"""Asyncio JSON-over-HTTP frontend for the scheduler service.

Same wire protocol as the threaded frontend (:mod:`repro.service.http`)
— identical routes, bodies, status codes, ``Idempotency-Key`` /
``X-Request-Id`` / ``Retry-After`` semantics — served by a single
``asyncio`` event loop instead of one OS thread per connection.  The
threaded server pays a thread spawn + context switches per connection;
under a sustained submission burst (hundreds of short-lived connections
per second from :mod:`scripts.loadgen`) that dominates the request cost.
Here each connection is a coroutine, and the natural backpressure of one
accept loop keeps memory bounded under overload.

Division of labour per request class:

* **Submissions** (``POST /workflows``, ``POST /jobs``) call the
  service's ``submit_*(wait=False)`` form, which enqueues the command
  and returns a ``concurrent.futures.Future``; the coroutine awaits it
  via :func:`asyncio.wrap_future` — no thread blocks while the
  scheduler's event loop decides.
* **Snapshot reads** (``/status``, ``/plan``, ``/metrics``, ``/slo``,
  ``/healthz``, ``/readyz``) answer directly: they read lock-protected
  or immutable snapshots and never block on the scheduler.
* **Shard/migration traffic** (``/shard/*``) runs the blocking service
  call on the default executor — it is low-rate coordination traffic,
  not the hot path.

All scheduling decisions still happen on the service's single
event-loop thread; this frontend — like the threaded one — only
enqueues commands and reads snapshots.  Stdlib only (``asyncio`` +
``json``); the minimal HTTP/1.1 parser supports keep-alive,
``Content-Length`` bodies, and per-read timeouts.

Run it with ``repro serve --async`` or in-process via
:func:`serve_http_async`, which mirrors :func:`repro.service.http.
serve_http` (returns a started server with ``.url`` and
``.shutdown()``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from http.client import responses as _HTTP_REASONS
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs import PROMETHEUS_CONTENT_TYPE, new_request_id, render_prometheus
from repro.service.api import ServiceSaturatedError
from repro.service.core import SchedulerService
from repro.service.http import (
    _MAX_BODY_BYTES,
    _REJECT_STATUS,
    _REQUEST_ID_OK,
    _RETRYABLE_REASONS,
    _retry_after,
)
from repro.workloads.traces import (
    job_from_dict,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = ["AsyncServiceHTTPServer", "serve_http_async"]

#: Per-read timeout (request head, body) and keep-alive idle limit.
_IO_TIMEOUT_S = 30.0
#: Upper bound on the request head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024

_TIMEOUTS = (TimeoutError, asyncio.TimeoutError)


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(self, method: str, path: str, headers: dict, body: bytes):
        self.method = method
        self.path = path
        self.headers = headers  # lower-cased header names
        self.body = body
        connection = headers.get("connection", "").lower()
        self.keep_alive = connection != "close"


class AsyncServiceHTTPServer:
    """Asyncio HTTP frontend bound to one :class:`SchedulerService`.

    The server runs on a dedicated daemon thread owning its own event
    loop, so in-process callers (tests, the CLI, benchmarks) use it
    exactly like the threaded ``ServiceHTTPServer``: construct, call
    :meth:`start`, read :attr:`url`, later :meth:`shutdown` — then drain
    the service.
    """

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._sockname: tuple = (host, port)
        obs = service.obs
        self._requests = obs.windowed_counter("http.requests")
        self._request_seconds = obs.windowed_histogram("http.request.seconds")
        self._submit_latency = obs.windowed_histogram("service.submit.seconds")

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "AsyncServiceHTTPServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-aio", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, self._host, self._port)
            )
        except BaseException as error:  # bind failure surfaces in start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._server = server
        self._sockname = server.sockets[0].getsockname()
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def shutdown(self) -> None:
        """Stop accepting requests and join the server thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    @property
    def url(self) -> str:
        host, port = self._sockname[0], self._sockname[1]
        return f"http://{host}:{port}"

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                start = time.perf_counter()
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self._requests.inc()
                    self._request_seconds.observe(time.perf_counter() - start)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.LimitOverrunError, *_TIMEOUTS):
            pass  # client went away / abused the protocol: just close
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=_IO_TIMEOUT_S
            )
        except asyncio.IncompleteReadError:
            return None  # clean close between requests
        except _TIMEOUTS:
            return None  # idle keep-alive connection: close it
        if len(head) > _MAX_HEAD_BYTES:
            return None
        try:
            request_line, _, header_blob = head.partition(b"\r\n")
            method, path, _version = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in header_blob.decode("latin-1").split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        try:
            length = int(headers.get("content-length", 0))
        except ValueError:
            length = 0
        if length > 0:
            if length > _MAX_BODY_BYTES:
                return None  # oversized: drop the connection, like a reset
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_IO_TIMEOUT_S
            )
        return _Request(method, path, headers, body)

    # -- routing ------------------------------------------------------------------

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        split = urlsplit(request.path)
        path = split.path.rstrip("/") or "/"
        if request.method == "GET":
            status, payload, content_type, headers = await self._get(path, split)
        elif request.method == "POST":
            status, payload, content_type, headers = await self._post(path, request)
        else:
            status, payload, content_type, headers = (
                405,
                {"error": f"method {request.method} not allowed"},
                "application/json",
                {},
            )
        if content_type == "application/json":
            # allow_nan=False mirrors the threaded frontend: a non-finite
            # float that slipped past json_safe fails loudly, never as
            # bare NaN that strict parsers reject.
            data = json.dumps(payload, allow_nan=False).encode("utf-8")
        else:
            data = payload.encode("utf-8")
        self._write_response(
            writer, status, data, content_type, headers, request.keep_alive
        )
        return request.keep_alive

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        data: bytes,
        content_type: str,
        headers: dict,
        keep_alive: bool,
    ) -> None:
        reason = _HTTP_REASONS.get(status, "")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        if not keep_alive:
            lines.append("Connection: close")
        writer.write("\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + data)

    # -- GET ----------------------------------------------------------------------

    async def _get(self, path: str, split) -> tuple:
        service = self.service
        if path == "/status":
            return 200, service.status().to_dict(), "application/json", {}
        if path == "/plan":
            return 200, service.plan_snapshot(), "application/json", {}
        if path == "/metrics":
            query = parse_qs(split.query)
            if query.get("format", [""])[0] == "prometheus":
                return (
                    200,
                    render_prometheus(service.obs.registry),
                    PROMETHEUS_CONTENT_TYPE,
                    {},
                )
            return 200, service.metrics_snapshot(), "application/json", {}
        if path == "/slo":
            return 200, service.slo_snapshot(), "application/json", {}
        if path == "/healthz":
            return 200, {"ok": True}, "application/json", {}
        if path == "/readyz":
            ready = service.running and not service.draining
            return (
                200 if ready else 503,
                {
                    "ready": ready,
                    "running": service.running,
                    "draining": service.draining,
                },
                "application/json",
                {},
            )
        if path == "/shard/skyline":
            payload = await self._blocking(service.demand_skyline)
            return 200, payload, "application/json", {}
        if path == "/shard/candidates":
            query = parse_qs(split.query)
            try:
                max_n = int(query.get("max", ["8"])[0])
            except ValueError:
                max_n = 8
            candidates = await self._blocking(service.migration_candidates, max_n)
            return 200, {"candidates": candidates}, "application/json", {}
        if path == "/shard/orphans":
            return 200, {"orphans": service.orphan_info()}, "application/json", {}
        if path == "/shard/workflows":
            return (
                200,
                {"workflows": sorted(service.workflow_ids())},
                "application/json",
                {},
            )
        if path == "/shard/owns":
            query = parse_qs(split.query)
            workflow_id = query.get("workflow", [""])[0]
            if not workflow_id:
                return 400, {"error": "missing ?workflow=<id>"}, "application/json", {}
            return (
                200,
                {
                    "workflow_id": workflow_id,
                    "owns": service.owns_workflow(workflow_id),
                },
                "application/json",
                {},
            )
        return 404, {"error": f"no such resource: {path}"}, "application/json", {}

    # -- POST ---------------------------------------------------------------------

    async def _post(self, path: str, request: _Request) -> tuple:
        if path == "/workflows":
            return await self._submit(
                request, workflow_from_dict, self.service.submit_workflow
            )
        if path == "/jobs":
            return await self._submit(
                request, job_from_dict, self.service.submit_adhoc
            )
        if path.startswith("/shard/"):
            return await self._shard_post(path, request)
        return 404, {"error": f"no such resource: {path}"}, "application/json", {}

    @staticmethod
    def _parse_body(request: _Request) -> tuple[Optional[dict], Optional[tuple]]:
        """The JSON object body, or the error response to send instead."""
        if not request.body:
            return None, (
                400,
                {"error": "missing or oversized request body"},
                "application/json",
                {},
            )
        try:
            body = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, (
                400,
                {"error": "request body is not valid JSON"},
                "application/json",
                {},
            )
        if not isinstance(body, dict):
            return None, (
                400,
                {"error": "request body must be a JSON object"},
                "application/json",
                {},
            )
        return body, None

    async def _submit(self, request: _Request, parse, submit) -> tuple:
        supplied = request.headers.get("x-request-id", "").strip()
        request_id = (
            supplied
            if supplied and _REQUEST_ID_OK.match(supplied)
            else new_request_id()
        )
        id_header = {"X-Request-Id": request_id}
        body, error = self._parse_body(request)
        if error is not None:
            status, payload, content_type, headers = error
            return status, payload, content_type, {**headers, **id_header}
        try:
            entity = parse(body)
        except (KeyError, TypeError, ValueError) as err:
            return (
                400,
                {"error": f"malformed submission: {err}"},
                "application/json",
                id_header,
            )
        key = request.headers.get("idempotency-key") or None
        start = time.perf_counter()
        try:
            future = submit(
                entity, wait=False, idempotency_key=key, request_id=request_id
            )
            result = await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.service.config.submit_timeout_s,
            )
        except ServiceSaturatedError as err:
            return (
                503,
                {"error": str(err), "retry_after_s": err.retry_after_s},
                "application/json",
                {"Retry-After": _retry_after(err.retry_after_s), **id_header},
            )
        except _TIMEOUTS:
            return (
                504,
                {"error": "scheduler did not answer in time"},
                "application/json",
                id_header,
            )
        except RuntimeError as err:  # service stopped
            return 503, {"error": str(err)}, "application/json", id_header
        # Admission latency as the submitter saw it (the threaded path
        # records this inside the synchronous submit call).
        self._submit_latency.observe(time.perf_counter() - start)
        status = 200 if result.accepted else _REJECT_STATUS.get(result.reason, 400)
        headers = {"X-Request-Id": result.request_id or request_id}
        if not result.accepted and result.reason in _RETRYABLE_REASONS:
            headers["Retry-After"] = _retry_after(1.0)
        return status, result.to_dict(), "application/json", headers

    async def _shard_post(self, path: str, request: _Request) -> tuple:
        body, error = self._parse_body(request)
        if error is not None:
            return error
        service = self.service
        try:
            if path == "/shard/migrate-out":
                handoff = await self._blocking(
                    service.migrate_out,
                    str(body["workflow_id"]),
                    dest=str(body.get("dest", "")),
                    epoch=int(body.get("epoch", 0)),
                )
                return (
                    200,
                    {
                        "workflow": workflow_to_dict(handoff["workflow"]),
                        "key": handoff["key"],
                        "epoch": handoff["epoch"],
                    },
                    "application/json",
                    {},
                )
            if path == "/shard/migrate-in":
                result = await self._blocking(
                    service.migrate_in,
                    workflow_from_dict(body["workflow"]),
                    key=body.get("key"),
                    epoch=int(body.get("epoch", 0)),
                )
                status = (
                    200
                    if result.accepted
                    else _REJECT_STATUS.get(result.reason, 400)
                )
                return status, result.to_dict(), "application/json", {}
            if path == "/shard/restore":
                if "workflow" in body:
                    result = await self._blocking(
                        service.restore_workflow,
                        workflow_from_dict(body["workflow"]),
                        key=body.get("key"),
                    )
                else:
                    result = await self._blocking(
                        service.restore_orphan, str(body["workflow_id"])
                    )
                return 200, result.to_dict(), "application/json", {}
            if path == "/shard/confirm":
                payload = await self._blocking(
                    service.confirm_migration,
                    str(body["workflow_id"]),
                    epoch=int(body.get("epoch", 0)),
                )
                return 200, payload, "application/json", {}
            return 404, {"error": f"no such resource: {path}"}, "application/json", {}
        except (KeyError, TypeError) as err:
            return (
                400,
                {"error": f"malformed shard request: {err}"},
                "application/json",
                {},
            )
        except ValueError as err:
            # Unknown workflow / already started / no such orphan: the
            # coordinator treats 409 as "this move cannot happen".
            return 409, {"error": str(err)}, "application/json", {}
        except _TIMEOUTS:
            return (
                504,
                {"error": "scheduler did not answer in time"},
                "application/json",
                {},
            )
        except RuntimeError as err:  # service stopped
            return 503, {"error": str(err)}, "application/json", {}

    async def _blocking(self, fn, *args, **kwargs):
        """Run a blocking service call on the default thread executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, lambda: fn(*args, **kwargs))


def serve_http_async(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> AsyncServiceHTTPServer:
    """Start the asyncio HTTP frontend; returns the bound, running server.

    Mirrors :func:`repro.service.http.serve_http`: the caller owns
    shutdown ordering — ``server.shutdown()`` first (stop accepting
    requests), then ``service.drain()``.
    """
    return AsyncServiceHTTPServer(service, host=host, port=port).start()
