"""The long-running scheduler service: submissions in, plans out.

FlowTime is an *online* system — workflows and ad-hoc jobs arrive
dynamically and the scheduler re-plans on each arrival (Sec. III/V) — but
the batch :class:`~repro.simulator.engine.Simulation` can only replay a
canned trace.  :class:`SchedulerService` is the serving path: a single
event-loop thread owns the clock and the scheduler, and a thread-safe
submission API feeds it while it runs.

Design points:

* **One writer.**  All scheduler/engine state is touched only by the event
  loop; submissions and lifecycle transitions travel through a command
  queue and get their answers via futures.  Admission decisions are
  therefore strictly serialised — two racing submissions can never both be
  admitted against the same headroom.
* **Batched re-planning.**  Submissions are injected into the engine the
  moment their command is processed, but the (virtual) clock is held open
  for ``batch_window_s`` after each arrival, so a burst of N submissions
  lands in a single slot — one ``WORKFLOW_ARRIVED`` batch, one LP ladder,
  not N.  The per-replan coalescing factor is recorded in the
  ``service.replan.batch_size`` histogram.
* **Admission + backpressure.**  Deadline workflows pass the exact
  max-placement admission check (:func:`repro.core.admission.
  check_admission`) synchronously at submission; ad-hoc jobs enter a
  bounded queue and are shed once ``adhoc_queue_limit`` jobs are
  outstanding (``service.queue.depth`` gauge, ``service.queue.shed``
  counter).
* **Graceful drain.**  ``drain()`` stops admitting, finishes every
  in-flight job (running the clock out virtually), flushes the trace sink,
  and returns the run's :class:`~repro.simulator.result.SimulationResult`
  — the same object a batch run produces, so outcome equivalence is
  directly checkable.
* **Crash safety.**  With ``journal_path`` set, every accepted submission
  is fsync'd to a write-ahead JSONL journal *before* the client sees the
  decision, and a restarting service replays the journal — re-admitting
  every previously accepted workflow and ad-hoc job without re-running
  admission (accepted stays accepted).  Idempotency keys submitted with
  HTTP retries are also journaled, so a client that never saw its
  pre-crash answer can safely retry the same key after the restart.
  ``kill()`` simulates the crash itself (no drain, no flush) for chaos
  testing.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import replace
from typing import Optional

from repro.core.admission import check_admission
from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.core.flowtime import JobDemand, PlannerConfig
from repro.estimation.errors import (
    apply_estimation_errors,
    apply_workflow_estimation_errors,
)
from repro.lp.solver import SolverFailure
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind
from repro.model.workflow import Workflow
from repro.obs import (
    Observability,
    SLOConfig,
    SLOTracker,
    json_safe,
    new_request_id,
    use_obs,
    use_request_id,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.service.api import (
    ServiceConfig,
    ServiceSaturatedError,
    ServiceStatus,
    SubmitResult,
)
from repro.service.journal import SubmissionJournal
from repro.simulator.engine import SimulationConfig
from repro.simulator.result import SimulationResult
from repro.simulator.runtime import EngineCore, make_engine_core

__all__ = ["SchedulerService"]

#: How long the loop parks on the command queue while idle (seconds).
#: Small enough to notice lifecycle flags promptly, large enough that an
#: idle service costs no measurable CPU.
_IDLE_POLL_S = 0.05

#: Hard cap on how long a continuous submission stream can hold the
#: (virtual) clock open, as a multiple of the batch window — batching must
#: never become starvation.
_BATCH_CAP_FACTOR = 16.0


class _Command:
    """One queued instruction for the event loop."""

    __slots__ = ("kind", "payload", "key", "request_id", "future")

    def __init__(
        self,
        kind: str,
        payload=None,
        key: Optional[str] = None,
        request_id: Optional[str] = None,
    ):
        self.kind = kind
        self.payload = payload
        self.key = key  # idempotency key, if the client sent one
        # Correlation id: the submitting thread's context dies with the
        # HTTP response, so the id rides the command onto the loop thread.
        self.request_id = request_id
        self.future: Future = Future()


class SchedulerService:
    """An online scheduler serving dynamic submissions over one cluster.

    Typical in-process use::

        service = SchedulerService(cluster)
        service.start()
        result = service.submit_workflow(workflow)   # sync accept/reject
        service.submit_adhoc(job)
        ...
        final = service.drain()                      # graceful run-out

    The HTTP frontend (:mod:`repro.service.http`) wraps exactly this
    surface; see :class:`~repro.service.api.ServiceConfig` for the knobs.
    """

    def __init__(
        self,
        cluster: ClusterCapacity,
        config: ServiceConfig | None = None,
        *,
        scheduler: Scheduler | None = None,
        obs: Observability | None = None,
    ):
        self.cluster = cluster
        self.config = config or ServiceConfig()
        self.obs = obs if obs is not None else Observability()
        scheduler_kwargs = dict(self.config.scheduler_kwargs)
        if self.config.lp_backend and self.config.scheduler.startswith("FlowTime"):
            planner = dict(scheduler_kwargs.get("planner", {}))
            planner.setdefault("backend", self.config.lp_backend)
            scheduler_kwargs["planner"] = planner
        self.scheduler = (
            scheduler
            if scheduler is not None
            else make_scheduler(self.config.scheduler, **scheduler_kwargs)
        )
        self._core = make_engine_core(
            cluster,
            self.scheduler,
            SimulationConfig(
                slot_seconds=self.config.slot_seconds,
                strict=self.config.strict,
                record_execution=self.config.record_execution,
                failures=self.config.failures,
                engine=self.config.engine,
            ),
            self.obs,
        )
        if self.config.realtime and hasattr(self._core, "jump_enabled"):
            # A wall-clock-paced loop owns the mapping of slots to
            # seconds; the event core must not fast-forward past it.
            self._core.jump_enabled = False
        self._commands: "queue.Queue[_Command]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._started = False
        self._draining = False
        self._stopped = threading.Event()
        self._killed = threading.Event()
        self._result: Optional[SimulationResult] = None
        # Decomposed windows of every admitted workflow's jobs; the
        # admission check's view of already-committed deadline work.
        self._windows: dict[str, JobWindow] = {}
        self._batch_open_since: Optional[float] = None
        self._batch_last_arrival = 0.0
        self._accepted_workflows = 0
        self._rejected_workflows = 0
        self._accepted_adhoc = 0
        self._shed_adhoc = 0
        # Decisions of accepted keyed submissions: a retried idempotency
        # key returns its original decision instead of double-admitting.
        self._idempotency: dict[str, SubmitResult] = {}
        # Reverse map entity id -> idempotency key, so a migrating workflow
        # carries its key to the destination shard (the key must keep
        # deduplicating wherever the workflow now lives).
        self._idempotency_by_id: dict[str, str] = {}
        # Unsettled outbound migrations: workflow id -> handoff info.  An
        # entry exists from migrate_out until confirm/restore (and is
        # rebuilt from unconfirmed journal tombstones after a crash).
        # Orphans are owned by nobody until the coordinator reconciles —
        # held, never unilaterally re-admitted, so they cannot duplicate.
        self._orphans: dict[str, dict] = {}
        # Highest migration epoch seen per workflow id (journal-rebuilt).
        # ``migrate_in`` rejects handoffs below this watermark with
        # ``stale_epoch``: a zombie shard replaying a pre-crash handoff
        # cannot re-land a workflow a newer migration already moved on.
        self._migration_epochs: dict[str, int] = {}
        self._journal: Optional[SubmissionJournal] = None
        if self.config.journal_path:
            with use_obs(self.obs):
                self._recover_from_journal(self.config.journal_path)
            self._journal = SubmissionJournal(
                self.config.journal_path, fsync=self.config.journal_fsync
            )
        # Rolling service-path metrics (bounded memory; see repro.obs.windowed)
        # and the SLO tracker reading the engine's slo.* feed metrics.
        self._submit_requests = self.obs.windowed_counter(
            "service.submit.requests"
        )
        self._submit_latency = self.obs.windowed_histogram(
            "service.submit.seconds"
        )
        self.slo = SLOTracker(
            self.obs.registry,
            SLOConfig(
                deadline_objective=self.config.slo_deadline_objective,
                decide_p99_s=self.config.slo_decide_p99_s,
                window_s=self.config.slo_window_s,
            ),
        )
        self._status = self._make_status(running=False, draining=False)

    # -- durability -----------------------------------------------------------------

    def _entity_seed(self, entity_id: str) -> int:
        """Per-entity deterministic seed for estimation-error perturbation.

        Derived from the entity id (not submission order), so a journal
        replay — which may interleave with new submissions — reproduces
        exactly the same believed-vs-true structure per job.
        """
        return zlib.crc32(entity_id.encode("utf-8")) ^ (
            self.config.fault_seed & 0xFFFFFFFF
        )

    def _perturb_workflow(self, workflow: Workflow) -> Workflow:
        model = self.config.error_model
        if model is None:
            return workflow
        return apply_workflow_estimation_errors(
            workflow, model, seed=self._entity_seed(workflow.workflow_id)
        )

    def _perturb_adhoc(self, job: Job) -> Job:
        model = self.config.error_model
        if model is None:
            return job
        return apply_estimation_errors(
            [job], model, seed=self._entity_seed(job.job_id)
        )[0]

    def _recover_from_journal(self, path: str) -> None:
        """Replay accepted submissions from a pre-crash journal.

        Admission is *not* re-run: an accepted submission stays accepted —
        the service owes it completion, not a second opinion.  Execution
        progress was never journaled, so recovered jobs restart from zero
        executed units (conservative, never lossy).  Idempotency keys are
        restored so pre-crash client retries still deduplicate.

        Migration records fold in journal order into a final per-workflow
        disposition: a plain ``workflow`` record (re-)admits, a
        ``migrate_out`` tombstone withdraws, and an *unconfirmed* tombstone
        leaves the workflow an orphan — held for the router's reconcile,
        never re-admitted here, so a destination that did journal it
        cannot be duplicated.  A ``migrate_confirm`` settles the tombstone
        (the workflow is simply gone from this shard).
        """
        records, skipped = SubmissionJournal.read(path)
        # Pass 1: final disposition per workflow id (ordered fold), plus
        # the per-workflow migration-epoch watermark (survives crashes so
        # the stale-epoch fence does too).
        disposition: dict[str, Optional[object]] = {}
        for record in records:
            if record.kind in ("workflow", "migrate_out"):
                disposition[record.entity.workflow_id] = record
            elif record.kind == "migrate_confirm":
                disposition[record.workflow_id] = None
            if record.kind in ("migrate_out", "migrate_confirm"):
                wid = (
                    record.workflow_id
                    if record.kind == "migrate_confirm"
                    else record.entity.workflow_id
                )
                epoch = int(record.epoch or 0)
                if epoch > self._migration_epochs.get(wid, 0):
                    self._migration_epochs[wid] = epoch
        # Pass 2: replay.  Ad-hoc records stream as before; each workflow
        # id replays once, from its *final* record.
        recovered = 0
        orphaned = 0
        seen: set[str] = set()
        for record in records:
            if record.kind == "adhoc":
                job = record.entity
                if self._core.has_job(job.job_id):
                    continue
                try:
                    self._core.add_adhoc(self._perturb_adhoc(job))
                except ValueError:
                    skipped += 1
                    continue
                self._accepted_adhoc += 1
                recovered += 1
                if record.key:
                    self._idempotency[record.key] = SubmitResult(
                        accepted=True,
                        kind="adhoc",
                        id=job.job_id,
                        reason="queued",
                    )
                continue
            if record.kind == "migrate_confirm":
                continue
            wid = record.entity.workflow_id
            if wid in seen:
                continue
            seen.add(wid)
            final = disposition.get(wid)
            if final is None:
                continue  # confirmed away: owned by another shard
            if final.kind == "migrate_out":
                self._orphans[wid] = {
                    "workflow": final.entity,
                    "key": final.key,
                    "dest": final.dest,
                    "epoch": final.epoch,
                }
                orphaned += 1
                continue
            workflow = final.entity
            if workflow.workflow_id in self._core.workflows:
                continue  # older journal generation already replayed it
            try:
                decomposition = decompose_deadline(
                    workflow,
                    self.cluster,
                    cluster_aware=self.config.cluster_aware_decomposition,
                )
                self._core.add_workflow(self._perturb_workflow(workflow))
            except ValueError:
                skipped += 1
                continue
            self._windows.update(decomposition.windows)
            self._accepted_workflows += 1
            recovered += 1
            if final.key:
                self._idempotency[final.key] = SubmitResult(
                    accepted=True,
                    kind="workflow",
                    id=workflow.workflow_id,
                    reason="admitted",
                )
                self._idempotency_by_id[workflow.workflow_id] = final.key
        if recovered or skipped or orphaned:
            self.obs.counter("service.journal.recovered").inc(recovered)
            if skipped:
                self.obs.counter("service.journal.skipped").inc(skipped)
            if orphaned:
                self.obs.counter("service.journal.orphaned").inc(orphaned)
            self.obs.event(
                "service_recovered",
                journal=str(path),
                n_recovered=recovered,
                n_skipped=skipped,
            )

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> "SchedulerService":
        """Spawn the event-loop thread (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        if self._stopped.is_set():
            raise RuntimeError("service already stopped; create a new one")
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler-service", daemon=True
        )
        self._started = True
        self._thread.start()
        return self

    def drain(self, timeout: float | None = None) -> SimulationResult:
        """Gracefully drain: stop admitting, finish in-flight work, flush.

        Returns the final :class:`~repro.simulator.result.SimulationResult`
        covering everything the service executed.  Safe to call more than
        once (subsequent calls return the same result).
        """
        if self._stopped.is_set():
            if self._result is None:
                raise RuntimeError(
                    "service stopped without a result (killed?); restart a "
                    "new service on the same journal to recover accepted work"
                )
            return self._result
        if self._thread is None or not self._thread.is_alive():
            raise RuntimeError("service is not running")
        command = _Command("drain")
        self._commands.put(command)
        result = command.future.result(timeout=timeout)
        self._thread.join(timeout=timeout)
        return result

    def stop(self, timeout: float | None = None) -> SimulationResult:
        """Alias for :meth:`drain` (SIGTERM semantics: drain, then exit)."""
        return self.drain(timeout=timeout)

    def kill(self, timeout: float | None = None) -> None:
        """Simulate a crash (SIGKILL semantics): stop without draining.

        The event loop exits at the next opportunity — no drain, no final
        result, in-flight work abandoned mid-slot.  Exists for chaos
        testing the journal recovery path: everything a client was told
        was accepted is already fsync'd, so a new service started on the
        same ``journal_path`` must recover all of it.
        """
        if self._thread is None or not self._thread.is_alive():
            self._killed.set()
            return
        self._killed.set()
        # Unblock a loop parked on the command queue so death is prompt.
        self._commands.put(_Command("kill"))
        self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def draining(self) -> bool:
        return self._draining

    def result(self) -> SimulationResult:
        """The final result (only after :meth:`drain`/:meth:`stop`)."""
        if self._result is None:
            raise RuntimeError("service has not drained yet")
        return self._result

    # -- submission API ---------------------------------------------------------------

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        wait: bool = True,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> "SubmitResult | Future":
        """Submit a deadline workflow; returns the admission decision.

        With ``wait=False`` the future resolves once the event loop
        processes the command (submissions enqueued before :meth:`start`
        are all decided, in order, before the clock first advances).
        A repeated ``idempotency_key`` whose original submission was
        accepted returns the original decision instead of re-admitting.
        ``request_id`` correlates the submission's trace events; one is
        minted when not supplied, and either way it is echoed on the
        :class:`~repro.service.api.SubmitResult`.
        """
        return self._submit(
            _Command(
                "workflow",
                workflow,
                idempotency_key,
                request_id or new_request_id(),
            ),
            wait,
        )

    def submit_adhoc(
        self,
        job: Job,
        *,
        wait: bool = True,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> "SubmitResult | Future":
        """Submit an ad-hoc job into the bounded best-effort queue."""
        return self._submit(
            _Command(
                "adhoc", job, idempotency_key, request_id or new_request_id()
            ),
            wait,
        )

    def _submit(self, command: _Command, wait: bool) -> "SubmitResult | Future":
        if self._stopped.is_set():
            raise RuntimeError("service is stopped")
        if self._commands.qsize() >= self.config.command_queue_limit:
            # Control-path backpressure: a stalled loop must not accumulate
            # unbounded blocked submitters; tell them to retry instead.
            self.obs.counter("service.saturated").inc()
            raise ServiceSaturatedError(
                f"command queue saturated "
                f"({self.config.command_queue_limit} pending)",
                retry_after_s=max(self.config.batch_window_s, 1.0),
            )
        self._submit_requests.inc()
        self._commands.put(command)
        if not wait:
            return command.future
        start = time.perf_counter()
        result = command.future.result(timeout=self.config.submit_timeout_s)
        # Admission latency as the submitter saw it: enqueue -> decision.
        self._submit_latency.observe(time.perf_counter() - start)
        return result

    # -- query API ---------------------------------------------------------------------

    def status(self) -> ServiceStatus:
        """A consistent snapshot of externally visible state."""
        with self._lock:
            return self._status

    def plan_snapshot(self) -> dict:
        """The live allocation plan as a JSON-friendly dict.

        Empty for schedulers that do not expose a plan (duck-typed on a
        ``current_plan`` attribute; FlowTime replaces plans wholesale on
        each re-plan, so reading the reference cross-thread is safe).
        """
        plan = getattr(self.scheduler, "current_plan", None)
        if plan is None:
            return {"origin_slot": None, "horizon": 0, "jobs": {}}
        jobs = {}
        for job_id, grant in plan.grants.items():
            nonzero = [
                [plan.origin_slot + k, int(units)]
                for k, units in enumerate(grant)
                if units
            ]
            if nonzero:
                jobs[job_id] = {
                    "total_units": int(grant.sum()),
                    "slots": nonzero,
                }
        return {
            "origin_slot": plan.origin_slot,
            "horizon": plan.horizon,
            "degraded": plan.degraded,
            "jobs": jobs,
        }

    def metrics_snapshot(self) -> dict:
        """Metrics registry snapshot (retried around racy registrations).

        Strict-JSON safe: non-finite floats (unset gauges, empty-histogram
        stats) are serialised as ``None``, never as bare ``NaN``.
        """
        for _ in range(8):
            try:
                return json_safe(self.obs.registry.snapshot())
            except RuntimeError:  # registry grew mid-iteration; retry
                continue
        return {}

    def slo_snapshot(self) -> dict:
        """SLO status (error budget, burn rate, decide p99) as a JSON dict."""
        return json_safe(self.slo.snapshot())

    # -- event loop -----------------------------------------------------------------

    def _loop(self) -> None:
        # Everything the loop touches (scheduler, planner, admission LP)
        # records into this service's observability handle.
        with use_obs(self.obs):
            self.obs.event(
                "service_start",
                scheduler=getattr(self.scheduler, "name", ""),
                realtime=self.config.realtime,
            )
            try:
                self._run_loop()
            finally:
                self._finish()

    def _run_loop(self) -> None:
        core = self._core
        config = self.config
        self._refresh_status()
        next_tick = time.monotonic() + config.slot_seconds
        while not self._draining:
            if self._killed.is_set():
                return  # crash simulation: no drain, no flush, no result
            command = self._next_command(core, next_tick)
            drained_now = False
            while command is not None:
                if command.kind == "kill":
                    command.future.set_result(None)
                    return
                if command.kind == "drain":
                    self._draining = True
                    drained_now = True
                    drain_command = command
                    break
                if command.kind == "call":
                    self._handle_call(command)
                else:
                    self._handle_submission(command)
                command = self._poll_command()
            if drained_now:
                self._drain_out(drain_command)
                return
            now = time.monotonic()
            if config.realtime:
                while now >= next_tick:
                    self._step()
                    next_tick += config.slot_seconds
            elif not core.finished and not self._batch_window_open(now):
                self._step()
            self._refresh_status()

    def _next_command(self, core: EngineCore, next_tick: float) -> Optional[_Command]:
        """Fetch the next command, blocking only when there is nothing to do."""
        config = self.config
        if config.realtime:
            timeout = max(next_tick - time.monotonic(), 0.0)
            timeout = min(timeout, _IDLE_POLL_S if core.finished else timeout)
        elif self._batch_window_open(time.monotonic()):
            timeout = min(self._batch_window_remaining(), _IDLE_POLL_S)
        elif core.finished:
            timeout = _IDLE_POLL_S  # idle: park until work arrives
        else:
            return self._poll_command()  # work pending: never block
        try:
            return self._commands.get(timeout=max(timeout, 0.001))
        except queue.Empty:
            return None

    def _poll_command(self) -> Optional[_Command]:
        try:
            return self._commands.get_nowait()
        except queue.Empty:
            return None

    # -- batching -------------------------------------------------------------------

    def _note_arrival(self) -> None:
        now = time.monotonic()
        if self._batch_open_since is None:
            self._batch_open_since = now
        self._batch_last_arrival = now

    def _batch_window_open(self, now: float) -> bool:
        if self._batch_open_since is None or self.config.batch_window_s <= 0:
            return False
        window = self.config.batch_window_s
        if now - self._batch_open_since >= window * _BATCH_CAP_FACTOR:
            self._batch_open_since = None  # cap: never starve the clock
            return False
        if now - self._batch_last_arrival >= window:
            self._batch_open_since = None
            return False
        return True

    def _batch_window_remaining(self) -> float:
        if self._batch_open_since is None:
            return 0.0
        return max(
            self.config.batch_window_s
            - (time.monotonic() - self._batch_last_arrival),
            0.0,
        )

    # -- command handling --------------------------------------------------------------

    def _handle_submission(self, command: _Command) -> None:
        try:
            key = command.key
            if key is not None and key in self._idempotency:
                # Client retry of an already-accepted submission (e.g. the
                # answer was lost to a crash or connection reset): return
                # the original decision; never double-admit.  The original
                # request id is kept — that is the id the trace events
                # carry, so it is the one worth querying.
                self.obs.counter("service.idempotent.hits").inc()
                command.future.set_result(self._idempotency[key])
                return
            # Everything this submission triggers on the loop thread —
            # admission events, journal spans, the registration itself —
            # is stamped with its request id.
            with use_request_id(command.request_id):
                if command.kind == "workflow":
                    result = self._admit_workflow(
                        command.payload, key, request_id=command.request_id
                    )
                elif command.kind == "adhoc":
                    result = self._enqueue_adhoc(
                        command.payload, key, request_id=command.request_id
                    )
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown command {command.kind!r}")
            result = replace(result, request_id=command.request_id or "")
            if key is not None and result.accepted:
                # Only accepted decisions are pinned: a rejection (full
                # queue, infeasible now) may legitimately succeed on retry.
                self._idempotency[key] = result
                self._idempotency_by_id[result.id] = key
            # Publish the new counts before resolving the future, so a
            # client that saw its decision also sees it in /status.
            self._refresh_status()
            command.future.set_result(result)
        except Exception as error:  # surfaced to the submitting thread
            command.future.set_exception(error)

    def _planner_config(self) -> PlannerConfig:
        planner = getattr(self.scheduler, "planner", None)
        config = getattr(planner, "config", None)
        return config if isinstance(config, PlannerConfig) else PlannerConfig()

    def _committed_demands(self) -> list[JobDemand]:
        """Remaining demands of every admitted, unfinished deadline job.

        Built from the engine's registered runs (not the slot view) so
        workflows admitted seconds ago but starting in the future already
        count against headroom.
        """
        demands = []
        for run in self._core.job_runs():
            job = run.job
            if job.kind is not JobKind.DEADLINE or run.done:
                continue
            window = self._windows.get(job.job_id)
            if window is None:  # defensive: admitted => decomposed
                continue
            units = run.believed_remaining_units()
            if units <= 0:
                continue
            demands.append(
                JobDemand(
                    job_id=job.job_id,
                    release_slot=window.release_slot,
                    deadline_slot=window.deadline_slot,
                    units=units,
                    unit_demand=job.tasks.demand,
                    max_parallel=job.tasks.count,
                )
            )
        return demands

    def _admit_workflow(
        self,
        workflow: Workflow,
        key: str | None = None,
        *,
        request_id: str | None = None,
    ) -> SubmitResult:
        core = self._core
        obs = self.obs
        if self._draining:
            return self._reject_workflow(workflow, "draining")
        if workflow.workflow_id in core.workflows:
            return self._reject_workflow(workflow, "invalid")
        try:
            for job in workflow.jobs:
                if core.has_job(job.job_id):
                    raise ValueError(f"duplicate job id {job.job_id}")
                core.validate_job(job)
        except ValueError:
            return self._reject_workflow(workflow, "invalid")

        utilisation = float("nan")
        if self.config.admission:
            try:
                decision = check_admission(
                    workflow,
                    self._committed_demands(),
                    self.cluster,
                    now_slot=core.slot,
                    config=self._planner_config(),
                )
            except SolverFailure:
                # The admission LP itself failed — a transient solver
                # condition, not a verdict on the workflow.  Answer
                # "unavailable" (HTTP 503, retryable), never a silent
                # admit that skipped the feasibility proof.
                obs.counter("service.submit.workflow.unavailable").inc()
                return SubmitResult(
                    accepted=False,
                    kind="workflow",
                    id=workflow.workflow_id,
                    reason="unavailable",
                    queue_depth=core.live_adhoc_count(),
                )
            utilisation = decision.utilisation
            if not decision.admit:
                self._rejected_workflows += 1
                obs.counter("service.submit.workflow.rejected").inc()
                return SubmitResult(
                    accepted=False,
                    kind="workflow",
                    id=workflow.workflow_id,
                    reason="infeasible",
                    utilisation=decision.utilisation,
                    shortfall_units=dict(decision.shortfall_units),
                    queue_depth=core.live_adhoc_count(),
                )

        decomposition = decompose_deadline(
            workflow,
            self.cluster,
            cluster_aware=self.config.cluster_aware_decomposition,
        )
        self._windows.update(decomposition.windows)
        # The engine executes the (possibly error-perturbed) true structure;
        # the journal records the *original* submission — replay re-derives
        # the same perturbation from the id-keyed seed.
        core.add_workflow(
            self._perturb_workflow(workflow), request_id=request_id
        )
        if self._journal is not None:
            self._journal.append_workflow(workflow, key=key)
        self._accepted_workflows += 1
        self._note_arrival()
        obs.counter("service.submit.workflow.accepted").inc()
        return SubmitResult(
            accepted=True,
            kind="workflow",
            id=workflow.workflow_id,
            reason="admitted",
            utilisation=utilisation,
            queue_depth=core.live_adhoc_count(),
        )

    def _reject_workflow(self, workflow: Workflow, reason: str) -> SubmitResult:
        self._rejected_workflows += 1
        self.obs.counter("service.submit.workflow.rejected").inc()
        return SubmitResult(
            accepted=False,
            kind="workflow",
            id=workflow.workflow_id,
            reason=reason,
            queue_depth=self._core.live_adhoc_count(),
        )

    def _enqueue_adhoc(
        self,
        job: Job,
        key: str | None = None,
        *,
        request_id: str | None = None,
    ) -> SubmitResult:
        core = self._core
        obs = self.obs
        depth = core.live_adhoc_count()
        if self._draining:
            reason = "draining"
        elif core.has_job(job.job_id):
            reason = "invalid"
        elif depth >= self.config.adhoc_queue_limit:
            # Backpressure: shed instead of growing the queue unboundedly.
            self._shed_adhoc += 1
            obs.counter("service.queue.shed").inc()
            reason = "queue_full"
        else:
            try:
                core.add_adhoc(self._perturb_adhoc(job), request_id=request_id)
            except ValueError:
                reason = "invalid"
            else:
                if self._journal is not None:
                    self._journal.append_adhoc(job, key=key)
                self._accepted_adhoc += 1
                self._note_arrival()
                obs.counter("service.submit.adhoc.accepted").inc()
                depth += 1
                obs.gauge("service.queue.depth").set(depth)
                return SubmitResult(
                    accepted=True,
                    kind="adhoc",
                    id=job.job_id,
                    reason="queued",
                    queue_depth=depth,
                )
        if reason != "queue_full":
            obs.counter("service.submit.adhoc.rejected").inc()
        return SubmitResult(
            accepted=False,
            kind="adhoc",
            id=job.job_id,
            reason=reason,
            queue_depth=depth,
        )

    # -- migration API (docs/SHARDING.md) ---------------------------------------------
    #
    # All mutators run as closures on the event-loop thread (the same
    # single-writer discipline as submissions), so a migration can never
    # race an admission against the same headroom.  Reads that only touch
    # a dict snapshot (owns_workflow, workflow_ids, orphan_info) go direct.

    def _call(self, fn, timeout: float | None = None):
        """Run *fn* on the event-loop thread; return (or raise) its result."""
        if self._stopped.is_set():
            raise RuntimeError("service is stopped")
        command = _Command("call", fn)
        self._commands.put(command)
        return command.future.result(
            timeout=timeout if timeout is not None else self.config.submit_timeout_s
        )

    def _handle_call(self, command: _Command) -> None:
        try:
            command.future.set_result(command.payload())
        except Exception as error:  # surfaced to the calling thread
            command.future.set_exception(error)

    def migrate_out(
        self, workflow_id: str, *, dest: str, epoch: int,
        timeout: float | None = None,
    ) -> dict:
        """Withdraw a not-yet-started workflow for handoff to shard *dest*.

        Journals a ``migrate_out`` tombstone (entity + idempotency key
        embedded) before answering, and tracks the handoff as an orphan
        until :meth:`confirm_migration` or :meth:`restore_workflow`
        settles it.  Returns ``{"workflow", "key", "epoch"}``.  Raises
        ``ValueError`` when the workflow is unknown or already started.
        """
        return self._call(
            lambda: self._migrate_out(workflow_id, dest, epoch), timeout
        )

    def _migrate_out(self, workflow_id: str, dest: str, epoch: int) -> dict:
        workflow = self._core.remove_workflow(workflow_id)
        for job in workflow.jobs:
            self._windows.pop(job.job_id, None)
        key = self._idempotency_by_id.get(workflow_id)
        if self._journal is not None:
            self._journal.append_migrate_out(
                workflow, dest=dest, epoch=epoch, key=key
            )
        self._orphans[workflow_id] = {
            "workflow": workflow, "key": key, "dest": dest, "epoch": epoch,
        }
        if epoch > self._migration_epochs.get(workflow_id, 0):
            self._migration_epochs[workflow_id] = epoch
        self.obs.counter("service.migrate.out").inc()
        self._refresh_status()
        return {"workflow": workflow, "key": key, "epoch": epoch}

    def migrate_in(
        self, workflow: Workflow, *, key: str | None = None, epoch: int = 0,
        timeout: float | None = None,
    ) -> SubmitResult:
        """Accept a workflow handed off by another shard.

        Admission *is* re-run against this shard's capacity slice (the
        move must not overload the destination); on accept the workflow is
        journaled here like any submission and the idempotency key is
        pinned, so the key keeps deduplicating on its new home shard.
        Idempotent on an already-owned workflow id (a re-delivered handoff
        answers accepted without a second admission).  A handoff whose
        epoch is below this shard's recorded watermark for the workflow
        is rejected with ``stale_epoch`` — it is a replay of a migration
        that a newer one (rebalance or failover) has already superseded.
        """
        return self._call(lambda: self._migrate_in(workflow, key, epoch), timeout)

    def _migrate_in(
        self, workflow: Workflow, key: str | None, epoch: int
    ) -> SubmitResult:
        if workflow.workflow_id in self._core.workflows:
            result = SubmitResult(
                accepted=True,
                kind="workflow",
                id=workflow.workflow_id,
                reason="admitted",
            )
        elif epoch and epoch < self._migration_epochs.get(
            workflow.workflow_id, 0
        ):
            self.obs.counter("service.migrate.stale_epoch").inc()
            return SubmitResult(
                accepted=False,
                kind="workflow",
                id=workflow.workflow_id,
                reason="stale_epoch",
            )
        else:
            # Migration moves an already-counted submission between
            # shards; the per-shard accept/reject submission counters must
            # not drift (the router's aggregate would double-count), so
            # they are restored around the admission call.
            counts = (self._accepted_workflows, self._rejected_workflows)
            result = self._admit_workflow(workflow, key)
            self._accepted_workflows, self._rejected_workflows = counts
        if result.accepted:
            if key is not None:
                self._idempotency[key] = result
                self._idempotency_by_id[workflow.workflow_id] = key
            if epoch > self._migration_epochs.get(workflow.workflow_id, 0):
                self._migration_epochs[workflow.workflow_id] = epoch
            self.obs.counter("service.migrate.in").inc()
        self._refresh_status()
        return result

    def restore_workflow(
        self, workflow: Workflow, *, key: str | None = None,
        timeout: float | None = None,
    ) -> SubmitResult:
        """Re-admit a workflow whose outbound handoff failed.

        Admission is *not* re-run: the workflow was accepted on this shard
        before the attempted move — accepted stays accepted.  Journals a
        plain ``workflow`` record (which supersedes the tombstone in the
        ordered fold) and clears the orphan entry.
        """
        return self._call(lambda: self._restore_workflow(workflow, key), timeout)

    def _restore_workflow(
        self, workflow: Workflow, key: str | None
    ) -> SubmitResult:
        wid = workflow.workflow_id
        if wid not in self._core.workflows:
            decomposition = decompose_deadline(
                workflow,
                self.cluster,
                cluster_aware=self.config.cluster_aware_decomposition,
            )
            self._core.add_workflow(self._perturb_workflow(workflow))
            self._windows.update(decomposition.windows)
            if self._journal is not None:
                self._journal.append_workflow(workflow, key=key)
            self._note_arrival()
        self._orphans.pop(wid, None)
        result = SubmitResult(
            accepted=True, kind="workflow", id=wid, reason="admitted"
        )
        if key is not None:
            self._idempotency[key] = result
            self._idempotency_by_id[wid] = key
        self.obs.counter("service.migrate.restored").inc()
        self._refresh_status()
        return result

    def restore_orphan(
        self, workflow_id: str, timeout: float | None = None
    ) -> SubmitResult:
        """Restore an orphaned handoff from its journaled tombstone."""
        def run() -> SubmitResult:
            orphan = self._orphans.get(workflow_id)
            if orphan is None:
                raise ValueError(f"no orphaned migration for {workflow_id}")
            return self._restore_workflow(orphan["workflow"], orphan["key"])

        return self._call(run, timeout)

    def confirm_migration(
        self, workflow_id: str, *, epoch: int, timeout: float | None = None
    ) -> dict:
        """Settle an outbound handoff: the destination durably owns it."""
        return self._call(
            lambda: self._confirm_migration(workflow_id, epoch), timeout
        )

    def _confirm_migration(self, workflow_id: str, epoch: int) -> dict:
        was_orphan = self._orphans.pop(workflow_id, None) is not None
        if epoch > self._migration_epochs.get(workflow_id, 0):
            self._migration_epochs[workflow_id] = epoch
        if self._journal is not None:
            self._journal.append_migrate_confirm(workflow_id, epoch=epoch)
        self.obs.counter("service.migrate.confirmed").inc()
        return {
            "workflow_id": workflow_id, "epoch": epoch, "was_orphan": was_orphan,
        }

    def owns_workflow(self, workflow_id: str) -> bool:
        """True when this shard's engine currently owns the workflow."""
        return workflow_id in self._core.workflows

    def workflow_ids(self) -> list[str]:
        """Ids of every workflow this shard currently owns (snapshot)."""
        return self._core.workflow_ids()

    def orphan_info(self) -> dict[str, dict]:
        """Unsettled outbound handoffs: id -> {dest, epoch} (snapshot)."""
        return {
            wid: {"dest": info["dest"], "epoch": info["epoch"]}
            for wid, info in dict(self._orphans).items()
        }

    def demand_skyline(self, timeout: float | None = None) -> dict:
        """Committed-demand saturation summary (the rebalancer's signal).

        The committed units of every admitted, unfinished deadline job are
        compared against this shard's capacity over the remaining horizon
        (now to the latest committed deadline); ``saturation`` is the worst
        per-resource fraction.  Computed on the loop thread for a
        consistent snapshot.
        """
        return self._call(self._demand_skyline, timeout)

    def _demand_skyline(self) -> dict:
        core = self._core
        now = core.slot
        demands = self._committed_demands()
        horizon = max(
            max((d.deadline_slot for d in demands), default=now + 1) - now, 1
        )
        base = self.cluster.base
        per_resource: dict[str, float] = {}
        for resource in self.cluster.resources:
            cap = base[resource] * horizon
            load = float(
                sum(d.units * d.unit_demand[resource] for d in demands)
            )
            per_resource[resource] = load / cap if cap else 0.0
        saturation = max(per_resource.values(), default=0.0)
        return {
            "slot": now,
            "n_workflows": len(core.workflows),
            "committed_units": int(sum(d.units for d in demands)),
            "horizon_slots": horizon,
            "queue_depth": core.live_adhoc_count(),
            "per_resource": per_resource,
            "saturation": saturation,
        }

    def migration_candidates(
        self, max_n: int = 8, timeout: float | None = None
    ) -> list[dict]:
        """Not-yet-started workflows this shard could hand off.

        Least-urgent first (latest deadline): those have the most slack to
        survive a re-admission on the destination.  Each entry carries the
        remaining units so the rebalancer can size its moves.
        """
        return self._call(lambda: self._migration_candidates(max_n), timeout)

    def _migration_candidates(self, max_n: int) -> list[dict]:
        core = self._core
        candidates = []
        for wid, workflow in core.workflows.items():
            if core.workflow_started(wid):
                continue
            units = sum(job.tasks.total_task_slots for job in workflow.jobs)
            candidates.append(
                {
                    "workflow_id": wid,
                    "units": int(units),
                    "deadline_slot": workflow.deadline_slot,
                }
            )
        candidates.sort(key=lambda c: (-c["deadline_slot"], c["workflow_id"]))
        return candidates[:max_n]

    # -- stepping -------------------------------------------------------------------

    def _step(self) -> None:
        outcome = self._core.step()
        arrivals = outcome.n_workflow_arrivals
        if arrivals:
            # The coalescing factor of this re-plan: how many workflow
            # submissions one WORKFLOW_ARRIVED batch (= one LP ladder) paid
            # for.  p50 > 1 under bursts is the batching win.
            self.obs.histogram("service.replan.batch_size").observe(arrivals)
        self.obs.gauge("service.queue.depth").set(self._core.live_adhoc_count())

    def _drain_out(self, command: _Command) -> None:
        """Finish every in-flight job, then resolve the drain future."""
        core = self._core
        self.obs.event("service_drain_start", slot=core.slot)
        self._refresh_status()
        deadline_slot = core.slot + self.config.drain_max_slots
        core.schedule_drain(deadline_slot)
        while not core.finished and core.slot < deadline_slot:
            self._step()
        core.flush_pending_events()
        core.finalize_metrics()
        finished = core.finished
        core.emit_run_end(finished)
        self.obs.sink.flush()
        self._result = core.result(finished)
        self._refresh_status()
        command.future.set_result(self._result)

    # -- bookkeeping --------------------------------------------------------------------

    def _make_status(self, running: bool, draining: bool) -> ServiceStatus:
        core = self._core
        return ServiceStatus(
            running=running,
            draining=draining,
            slot=core.slot,
            scheduler=getattr(self.scheduler, "name", ""),
            n_workflows=len(core.workflows),
            n_jobs=core.n_jobs,
            remaining_jobs=core.remaining_jobs,
            queue_depth=core.live_adhoc_count(),
            accepted_workflows=self._accepted_workflows,
            rejected_workflows=self._rejected_workflows,
            accepted_adhoc=self._accepted_adhoc,
            shed_adhoc=self._shed_adhoc,
            replans=getattr(self.scheduler, "replans", 0),
        )

    def _refresh_status(self) -> None:
        status = self._make_status(
            running=not self._stopped.is_set(), draining=self._draining
        )
        with self._lock:
            self._status = status

    def _finish(self) -> None:
        self._stopped.set()
        self._draining = True
        # Unblock any submitter still waiting: the service is gone.
        while True:
            command = self._poll_command()
            if command is None:
                break
            if not command.future.done():
                if command.kind in ("workflow", "adhoc"):
                    payload_id = getattr(
                        command.payload, "workflow_id", None
                    ) or getattr(command.payload, "job_id", "")
                    command.future.set_result(
                        SubmitResult(
                            accepted=False,
                            kind=command.kind,
                            id=payload_id,
                            reason="draining",
                        )
                    )
                elif command.kind == "kill":
                    command.future.set_result(None)
                else:
                    command.future.set_exception(
                        RuntimeError("service stopped before drain completed")
                    )
        if self._journal is not None:
            self._journal.close()
        self._refresh_status()
        self.obs.event(
            "service_stop", slot=self._core.slot, killed=self._killed.is_set()
        )
