"""Paper-style textual reports.

The benchmarks print the same rows/series the paper's figures report; these
helpers keep the formatting consistent and dependency-free (no plotting —
the artefacts are tables, which is also what EXPERIMENTS.md records).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.experiments import ComparisonResult

#: Presentation order of the instrumented phase histograms (others follow
#: alphabetically); see repro.obs for the span names.
PHASE_ORDER: tuple[str, ...] = (
    "decompose",
    "lp.build",
    "lp.presolve",
    "lp.solve",
    "sched.plan",
    "sched.decide",
    "sim.slot",
    "admission.check",
)


def _seconds_cell(seconds: float) -> str:
    """Render a turnaround/seconds value, NaN as ``n/a``."""
    return "n/a" if seconds != seconds else f"{seconds:.1f}"


def format_phase_table(metrics: Mapping[str, Mapping[str, float]]) -> str:
    """Per-phase wall-clock latency table from a metrics snapshot.

    Takes the ``SimulationResult.metrics`` /
    :meth:`repro.obs.MetricsRegistry.snapshot` shape and renders every
    timing histogram (span seconds) as one row of call count and latency
    quantiles in milliseconds.
    """
    names = [
        name
        for name, stats in metrics.items()
        if stats.get("type") == "histogram"
        and stats.get("count")
        # Only wall-clock span histograms belong in a latency table; other
        # histograms (e.g. lp.backend.*.iterations) carry non-time units.
        and (name in PHASE_ORDER or name.endswith("seconds"))
    ]
    names.sort(key=lambda n: (PHASE_ORDER.index(n) if n in PHASE_ORDER else
                              len(PHASE_ORDER), n))
    header = (
        f"{'phase':<18}{'calls':>8}{'p50 (ms)':>12}{'p95 (ms)':>12}"
        f"{'p99 (ms)':>12}{'max (ms)':>12}{'total (s)':>12}"
    )
    lines = ["per-phase timings (wall-clock):", header, "-" * len(header)]
    for name in names:
        stats = metrics[name]
        lines.append(
            f"{name:<18}{int(stats['count']):>8d}"
            f"{stats['p50'] * 1000:>12.3f}{stats['p95'] * 1000:>12.3f}"
            f"{stats['p99'] * 1000:>12.3f}{stats['max'] * 1000:>12.3f}"
            f"{stats['sum']:>12.3f}"
        )
    if len(lines) == 3:
        lines.append("(no phase timings recorded)")
    return "\n".join(lines)


def format_slowest_slot(metrics: Mapping[str, Mapping[str, float]]) -> str | None:
    """One-line slowest-slot breakdown, or None when not recorded."""
    slot = metrics.get("sim.slowest_slot")
    total = metrics.get("sim.slowest_slot_seconds")
    decide = metrics.get("sim.slowest_slot_decide_seconds")
    if not (slot and total and decide):
        return None
    total_ms = total["value"] * 1000
    decide_ms = decide["value"] * 1000
    return (
        f"slowest slot: #{int(slot['value'])} "
        f"({total_ms:.2f} ms total, {decide_ms:.2f} ms scheduler decision, "
        f"{total_ms - decide_ms:.2f} ms engine)"
    )


def format_comparison_table(
    comparison: ComparisonResult, *, planning: bool = False
) -> str:
    """The Fig. 4 triple as one table: delta stats, misses, turnaround.

    With ``planning=True`` a scheduling-latency column is appended (mean
    wall-clock milliseconds the scheduler spent per engine call — the
    quantity Fig. 7 studies for the LP).
    """
    header = (
        f"{'algorithm':<16}{'jobs missed':>12}{'wf missed':>11}"
        f"{'max Δ (s)':>12}{'mean Δ (s)':>12}{'ad-hoc turnaround (s)':>24}"
    )
    if planning:
        header += f"{'plan (ms/call)':>16}"
    lines = [header, "-" * len(header)]
    for outcome in comparison.outcomes:
        deltas = list(outcome.deltas_seconds.values())
        max_delta = max(deltas) if deltas else 0.0
        mean_delta = float(np.mean(deltas)) if deltas else 0.0
        row = (
            f"{outcome.name:<16}{outcome.n_missed_jobs:>12d}"
            f"{outcome.n_missed_workflows:>11d}"
            f"{max_delta:>12.1f}{mean_delta:>12.1f}"
            f"{_seconds_cell(outcome.adhoc_turnaround_s):>24}"
        )
        if planning:
            result = outcome.result
            per_call = (
                result.planning_seconds / result.planning_calls * 1000.0
                if result.planning_calls
                else 0.0
            )
            row += f"{per_call:>16.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_series(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    fmt: str = "{:.3f}",
) -> str:
    """A figure as a table: one x column, one column per series."""
    names = list(series)
    widths = [max(len(x_label), 10)] + [max(len(n), 12) for n in names]
    lines = [title]
    header = f"{x_label:>{widths[0]}}" + "".join(
        f"{name:>{width}}" for name, width in zip(names, widths[1:])
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{x:>{widths[0]}.6g}"
        for name, width in zip(names, widths[1:]):
            row += f"{fmt.format(series[name][i]):>{width}}"
        lines.append(row)
    return "\n".join(lines)


def turnaround_ratios(comparison: ComparisonResult, baseline: str = "FlowTime") -> dict[str, float]:
    """Each algorithm's ad-hoc turnaround as a multiple of *baseline*'s.

    The paper reports these as "2-10 times shorter average job turnaround
    time" (1/2 of CORA, 1/3 of FIFO, 1/10 of EDF, Fair 1.36x).
    """
    base = comparison.outcome(baseline).adhoc_turnaround_s
    if not base > 0:  # catches non-positive and NaN (no ad-hoc jobs)
        raise ValueError(f"baseline {baseline!r} has no positive turnaround")
    return {
        outcome.name: outcome.adhoc_turnaround_s / base
        for outcome in comparison.outcomes
    }
