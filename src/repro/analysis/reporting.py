"""Paper-style textual reports and the one-shot reproduction report.

Two layers live here (they were once split across ``analysis/report.py``
and ``analysis/reporting.py``; the split carried no weight and the old
``repro.analysis.report`` path is now a deprecated shim):

* **formatting helpers** — :func:`format_comparison_table`,
  :func:`format_phase_table`, :func:`format_series`,
  :func:`format_slowest_slot`, :func:`turnaround_ratios`.  The benchmarks
  print the same rows/series the paper's figures report; these keep the
  formatting consistent and dependency-free (no plotting — the artefacts
  are tables, which is also what EXPERIMENTS.md records).
* **the report generator** — :func:`run_report` re-runs the paper's core
  experiments (Fig. 1 exactly; Fig. 4 at a configurable scale; Fig. 5's
  slack ablation; timing samples for Fig. 6/7) and renders one Markdown
  document::

      python -m repro report --out report.md

  The full benchmark suite (``pytest benchmarks/``) remains the
  authoritative regeneration of every figure; the report trades
  exhaustiveness for a single-command, single-file summary.

The documented public surface is ``run_report`` and
``format_comparison_table`` (both re-exported from :mod:`repro.analysis`);
the other formatters are stable helpers.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.experiments import ComparisonResult, run_comparison, run_one
from repro.core.decomposition import decompose_deadline
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.estimation.errors import ErrorModel, apply_workflow_estimation_errors
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.obs import Observability, SLOTracker
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import adhoc_turnaround_seconds
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.dag_generators import chain_workflow, random_dag_edges
from repro.workloads.traces import SyntheticTrace, generate_trace

__all__ = [
    "PHASE_ORDER",
    "format_comparison_table",
    "format_phase_table",
    "format_series",
    "format_slo",
    "format_slowest_slot",
    "run_report",
    "turnaround_ratios",
]

#: Presentation order of the instrumented phase histograms (others follow
#: alphabetically); see repro.obs for the span names.
PHASE_ORDER: tuple[str, ...] = (
    "decompose",
    "lp.build",
    "lp.presolve",
    "lp.solve",
    "sched.plan",
    "sched.decide",
    "sim.slot",
    "admission.check",
)


def _seconds_cell(seconds: float) -> str:
    """Render a turnaround/seconds value, NaN as ``n/a``."""
    return "n/a" if seconds != seconds else f"{seconds:.1f}"


def format_phase_table(metrics: Mapping[str, Mapping[str, float]]) -> str:
    """Per-phase wall-clock latency table from a metrics snapshot.

    Takes the ``SimulationResult.metrics`` /
    :meth:`repro.obs.MetricsRegistry.snapshot` shape and renders every
    timing histogram (span seconds) as one row of call count and latency
    quantiles in milliseconds.
    """
    names = [
        name
        for name, stats in metrics.items()
        if stats.get("type") == "histogram"
        and stats.get("count")
        # Only wall-clock span histograms belong in a latency table; other
        # histograms (e.g. lp.backend.*.iterations) carry non-time units.
        and (name in PHASE_ORDER or name.endswith("seconds"))
    ]
    names.sort(key=lambda n: (PHASE_ORDER.index(n) if n in PHASE_ORDER else
                              len(PHASE_ORDER), n))
    header = (
        f"{'phase':<18}{'calls':>8}{'p50 (ms)':>12}{'p95 (ms)':>12}"
        f"{'p99 (ms)':>12}{'max (ms)':>12}{'total (s)':>12}"
    )
    lines = ["per-phase timings (wall-clock):", header, "-" * len(header)]
    for name in names:
        stats = metrics[name]
        lines.append(
            f"{name:<18}{int(stats['count']):>8d}"
            f"{stats['p50'] * 1000:>12.3f}{stats['p95'] * 1000:>12.3f}"
            f"{stats['p99'] * 1000:>12.3f}{stats['max'] * 1000:>12.3f}"
            f"{stats['sum']:>12.3f}"
        )
    if len(lines) == 3:
        lines.append("(no phase timings recorded)")
    return "\n".join(lines)


def format_slo(snapshot: Mapping) -> str:
    """Render an :meth:`repro.obs.SLOTracker.snapshot` as a short block.

    The same deadline error-budget / decide-latency summary the service
    exposes at ``GET /slo``, here for batch runs (the engine feeds the
    ``slo.*`` metrics regardless of which frontend drives it).
    """
    config = snapshot.get("config") or {}
    deadline = snapshot.get("deadline") or {}
    decide = snapshot.get("decide_latency") or {}
    healthy = snapshot.get("healthy")
    state = "no data" if healthy is None else ("OK" if healthy else "VIOLATED")
    lines = [f"SLO status: {state}"]
    total = deadline.get("total")
    if total:
        compliance = deadline.get("compliance")
        budget = deadline.get("budget_remaining")
        lines.append(
            f"  deadlines: {int(total - deadline.get('missed', 0))}/{int(total)}"
            f" met ({compliance:.2%} vs {deadline.get('objective', 0):.2%}"
            f" objective; error budget remaining {budget:.1%})"
        )
    else:
        lines.append("  deadlines: no workflows completed")
    p99 = decide.get("p99_s")
    if p99 is not None:
        lines.append(
            f"  decide latency: p99 {p99 * 1000:.2f} ms"
            f" (objective {config.get('decide_p99_s', 0) * 1000:.0f} ms,"
            f" {decide.get('window_count', 0)} samples in window)"
        )
    else:
        lines.append("  decide latency: no samples in window")
    return "\n".join(lines)


def format_slowest_slot(metrics: Mapping[str, Mapping[str, float]]) -> str | None:
    """One-line slowest-slot breakdown, or None when not recorded."""
    slot = metrics.get("sim.slowest_slot")
    total = metrics.get("sim.slowest_slot_seconds")
    decide = metrics.get("sim.slowest_slot_decide_seconds")
    if not (slot and total and decide):
        return None
    total_ms = total["value"] * 1000
    decide_ms = decide["value"] * 1000
    return (
        f"slowest slot: #{int(slot['value'])} "
        f"({total_ms:.2f} ms total, {decide_ms:.2f} ms scheduler decision, "
        f"{total_ms - decide_ms:.2f} ms engine)"
    )


def format_comparison_table(
    comparison: ComparisonResult, *, planning: bool = False
) -> str:
    """The Fig. 4 triple as one table: delta stats, misses, turnaround.

    With ``planning=True`` a scheduling-latency column is appended (mean
    wall-clock milliseconds the scheduler spent per engine call — the
    quantity Fig. 7 studies for the LP).
    """
    header = (
        f"{'algorithm':<16}{'jobs missed':>12}{'wf missed':>11}"
        f"{'max Δ (s)':>12}{'mean Δ (s)':>12}{'ad-hoc turnaround (s)':>24}"
    )
    if planning:
        header += f"{'plan (ms/call)':>16}"
    lines = [header, "-" * len(header)]
    for outcome in comparison.outcomes:
        deltas = list(outcome.deltas_seconds.values())
        max_delta = max(deltas) if deltas else 0.0
        mean_delta = float(np.mean(deltas)) if deltas else 0.0
        row = (
            f"{outcome.name:<16}{outcome.n_missed_jobs:>12d}"
            f"{outcome.n_missed_workflows:>11d}"
            f"{max_delta:>12.1f}{mean_delta:>12.1f}"
            f"{_seconds_cell(outcome.adhoc_turnaround_s):>24}"
        )
        if planning:
            result = outcome.result
            per_call = (
                result.planning_seconds / result.planning_calls * 1000.0
                if result.planning_calls
                else 0.0
            )
            row += f"{per_call:>16.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_series(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    fmt: str = "{:.3f}",
) -> str:
    """A figure as a table: one x column, one column per series."""
    names = list(series)
    widths = [max(len(x_label), 10)] + [max(len(n), 12) for n in names]
    lines = [title]
    header = f"{x_label:>{widths[0]}}" + "".join(
        f"{name:>{width}}" for name, width in zip(names, widths[1:])
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{x:>{widths[0]}.6g}"
        for name, width in zip(names, widths[1:]):
            row += f"{fmt.format(series[name][i]):>{width}}"
        lines.append(row)
    return "\n".join(lines)


def turnaround_ratios(comparison: ComparisonResult, baseline: str = "FlowTime") -> dict[str, float]:
    """Each algorithm's ad-hoc turnaround as a multiple of *baseline*'s.

    The paper reports these as "2-10 times shorter average job turnaround
    time" (1/2 of CORA, 1/3 of FIFO, 1/10 of EDF, Fair 1.36x).
    """
    base = comparison.outcome(baseline).adhoc_turnaround_s
    if not base > 0:  # catches non-positive and NaN (no ad-hoc jobs)
        raise ValueError(f"baseline {baseline!r} has no positive turnaround")
    return {
        outcome.name: outcome.adhoc_turnaround_s / base
        for outcome in comparison.outcomes
    }


# -- the one-shot reproduction report -----------------------------------------


def _fig1_section() -> list[str]:
    cluster = ClusterCapacity.uniform(cpu=4, mem=8)
    w_spec = TaskSpec(count=2, duration_slots=50, demand=ResourceVector({CPU: 2, MEM: 2}))
    jobs = [Job(job_id=f"W1-J{i}", tasks=w_spec, workflow_id="W1") for i in (1, 2)]
    workflow = Workflow.from_jobs("W1", jobs, [("W1-J1", "W1-J2")], 0, 200)
    a_spec = TaskSpec(count=2, duration_slots=100, demand=ResourceVector({CPU: 1, MEM: 1}))
    adhoc = [
        Job(job_id="A1", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=0),
        Job(job_id="A2", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=100),
    ]
    rows = []
    for label, opts, paper in (
        ("EDF", {}, 150),
        ("FlowTime", {"planner": {"slack_slots": 0}}, 100),
    ):
        result = Simulation(
            cluster, make_scheduler(label, **opts),
            workflows=[workflow], adhoc_jobs=adhoc,
            config=SimulationConfig(slot_seconds=1.0),
        ).run()
        rows.append((label, adhoc_turnaround_seconds(result), paper))
    lines = [
        "## Fig. 1 — motivating example",
        "",
        "| scheduler | avg ad-hoc turnaround | paper |",
        "|---|---|---|",
    ]
    for label, measured, paper in rows:
        lines.append(f"| {label} | {measured:.0f} | {paper} |")
    lines.append("")
    return lines


def _fig4_section(scale: str, seed: int) -> list[str]:
    if scale == "full":
        cluster = ClusterCapacity.uniform(cpu=96, mem=192)
        trace = generate_trace(
            n_workflows=5, jobs_per_workflow=18, n_adhoc=40, capacity=cluster,
            looseness=(4.0, 8.0), adhoc_rate_per_slot=0.7,
            workflow_spread_slots=70, seed=seed,
        )
    else:
        cluster = ClusterCapacity.uniform(cpu=64, mem=128)
        trace = generate_trace(
            n_workflows=4, jobs_per_workflow=12, n_adhoc=30, capacity=cluster,
            looseness=(4.0, 8.0), adhoc_rate_per_slot=0.7,
            workflow_spread_slots=50, seed=seed,
        )
    comparison = run_comparison(
        trace, cluster, ("FlowTime", "CORA", "EDF", "Fair", "FIFO")
    )
    ratios = turnaround_ratios(comparison)
    lines = [
        f"## Fig. 4 — mixed cluster ({trace.n_deadline_jobs} deadline jobs, "
        f"{len(trace.adhoc_jobs)} ad-hoc)",
        "",
        "| algorithm | jobs missed | workflows missed | ad-hoc turnaround (s) | vs FlowTime |",
        "|---|---|---|---|---|",
    ]
    for outcome in comparison.outcomes:
        lines.append(
            f"| {outcome.name} | {outcome.n_missed_jobs} | "
            f"{outcome.n_missed_workflows} | {outcome.adhoc_turnaround_s:.1f} | "
            f"{ratios[outcome.name]:.2f}x |"
        )
    lines.append("")
    lines.append(
        "Paper: FlowTime 0 missed; Fair 1.36x, CORA 2x, FIFO 3x, EDF 10x "
        "its ad-hoc turnaround."
    )
    lines.append("")
    return lines


def _fig5_section() -> list[str]:
    from repro.core.critical_path import critical_path_length

    cluster = ClusterCapacity.uniform(cpu=128, mem=256)
    spec = TaskSpec(count=16, duration_slots=10, demand=ResourceVector({CPU: 2, MEM: 4}))
    workflows = []
    for i in range(4):
        start = i * 20
        skeleton = chain_workflow(f"wf{i}", 4, start, start + 10_000, spec_of=spec)
        cp = critical_path_length(skeleton, cluster, cluster_aware=True)
        workflow = chain_workflow(f"wf{i}", 4, start, start + int(cp * 1.8), spec_of=spec)
        workflows.append(
            apply_workflow_estimation_errors(workflow, ErrorModel(1.0, 1.15), seed=i)
        )
    adhoc = adhoc_stream(
        25, rate_per_slot=0.3,
        horizon_slots=max(w.deadline_slot for w in workflows), seed=99,
    )
    trace = SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=tuple(adhoc))
    faithful = {"planner": {"front_load": False}, "work_conserving": False}
    comparison = run_comparison(
        trace, cluster, ("FlowTime", "FlowTime_no_ds"),
        scheduler_kwargs={"FlowTime": dict(faithful), "FlowTime_no_ds": dict(faithful)},
    )
    lines = [
        "## Fig. 5 — deadline slack (under-estimation noise up to 1.15x)",
        "",
        "| variant | jobs missed | ad-hoc turnaround (s) |",
        "|---|---|---|",
    ]
    for outcome in comparison.outcomes:
        lines.append(
            f"| {outcome.name} | {outcome.n_missed_jobs} | "
            f"{outcome.adhoc_turnaround_s:.1f} |"
        )
    lines.append("")
    lines.append("Paper: 0 vs 5 misses; turnaround 522.5 vs 531.1 s.")
    lines.append("")
    return lines


def _timing_section() -> list[str]:
    # Fig. 6 sample: decomposition at the top of the paper's sweep.
    rng = np.random.default_rng(200)
    spec = TaskSpec(count=8, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4}))
    jobs = [Job(job_id=f"w-j{i}", tasks=spec, workflow_id="w") for i in range(200)]
    edges = [(f"w-j{a}", f"w-j{b}") for a, b in random_dag_edges(200, 6000, rng)]
    workflow = Workflow.from_jobs("w", jobs, edges, 0, 4000)
    cluster = ClusterCapacity.uniform(cpu=500, mem=1024)
    start = time.perf_counter()
    decompose_deadline(workflow, cluster)
    decomposition_ms = (time.perf_counter() - start) * 1000

    # Fig. 7 sample: 100 jobs, 100 slots, 500 cores / 1 TB.
    rng = np.random.default_rng(7)
    entries = []
    for i in range(100):
        release = int(rng.integers(0, 50))
        deadline = int(rng.integers(release + 10, 101))
        parallel = int(rng.integers(4, 16))
        units = min(int(rng.integers(10, 200)), (deadline - release) * parallel)
        entries.append(
            ScheduleEntry(
                job_id=f"j{i}", release=release, deadline=deadline, units=units,
                unit_demand=ResourceVector({CPU: int(rng.integers(1, 3)), MEM: 4}),
                max_parallel=parallel,
            )
        )
    caps = np.zeros((100, 2))
    caps[:, 0], caps[:, 1] = 500, 1024
    problem = build_schedule_problem(entries, caps, (CPU, MEM))
    start = time.perf_counter()
    result = lexmin_schedule(problem, max_rounds=1)
    lp_ms = (time.perf_counter() - start) * 1000
    status = "optimal" if result.is_optimal else result.status

    return [
        "## Fig. 6 / Fig. 7 — algorithm latency samples",
        "",
        f"* deadline decomposition, 200 nodes / ~6000 edges: "
        f"**{decomposition_ms:.1f} ms** (paper ceiling: 3000 ms)",
        f"* scheduling LP, 100 jobs x 100 slots on 500 cores / 1 TB: "
        f"**{lp_ms:.0f} ms** ({status}) — far below one 10 s slot",
        "",
    ]


def _phase_latency_section(seed: int) -> list[str]:
    """Per-phase wall-clock profile of one instrumented FlowTime run.

    This is the live-run counterpart of the Fig. 6/7 microbenchmarks: the
    same latencies (decomposition, LP build/solve, per-slot decision)
    measured where they actually occur, plus the engine's slowest-slot
    breakdown — the first place to look when a run misses deadlines.
    """
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = generate_trace(
        n_workflows=3, jobs_per_workflow=10, n_adhoc=20, capacity=cluster,
        looseness=(4.0, 8.0), adhoc_rate_per_slot=0.7,
        workflow_spread_slots=40, seed=seed,
    )
    obs = Observability()
    outcome = run_one("FlowTime", trace, cluster, obs=obs)
    lines = [
        "## Per-phase latency profile (instrumented FlowTime run)",
        "",
        "```",
        format_phase_table(outcome.result.metrics),
    ]
    slowest = format_slowest_slot(outcome.result.metrics)
    if slowest:
        lines.append(slowest)
    # The engine feeds slo.* metrics during the run; read them back the
    # same way the service's /slo endpoint does.
    lines += ["", format_slo(SLOTracker(obs.registry).snapshot()), "```", ""]
    return lines


def run_report(*, scale: str = "quick", seed: int = 15) -> str:
    """Render the Markdown reproduction report.

    Args:
        scale: "quick" (default) or "full" (paper-size Fig. 4 workload).
        seed: workload seed for the Fig. 4 section.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    lines = [
        "# FlowTime reproduction report",
        "",
        f"Scale: {scale}; workload seed: {seed}.  Shapes, not absolute",
        "numbers, are the claims under test (see EXPERIMENTS.md).",
        "",
    ]
    lines += _fig1_section()
    lines += _fig4_section(scale, seed)
    lines += _fig5_section()
    lines += _timing_section()
    lines += _phase_latency_section(seed)
    return "\n".join(lines)

