"""Paper-style textual reports.

The benchmarks print the same rows/series the paper's figures report; these
helpers keep the formatting consistent and dependency-free (no plotting —
the artefacts are tables, which is also what EXPERIMENTS.md records).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.experiments import ComparisonResult


def format_comparison_table(
    comparison: ComparisonResult, *, planning: bool = False
) -> str:
    """The Fig. 4 triple as one table: delta stats, misses, turnaround.

    With ``planning=True`` a scheduling-latency column is appended (mean
    wall-clock milliseconds the scheduler spent per engine call — the
    quantity Fig. 7 studies for the LP).
    """
    header = (
        f"{'algorithm':<16}{'jobs missed':>12}{'wf missed':>11}"
        f"{'max Δ (s)':>12}{'mean Δ (s)':>12}{'ad-hoc turnaround (s)':>24}"
    )
    if planning:
        header += f"{'plan (ms/call)':>16}"
    lines = [header, "-" * len(header)]
    for outcome in comparison.outcomes:
        deltas = list(outcome.deltas_seconds.values())
        max_delta = max(deltas) if deltas else 0.0
        mean_delta = float(np.mean(deltas)) if deltas else 0.0
        row = (
            f"{outcome.name:<16}{outcome.n_missed_jobs:>12d}"
            f"{outcome.n_missed_workflows:>11d}"
            f"{max_delta:>12.1f}{mean_delta:>12.1f}"
            f"{outcome.adhoc_turnaround_s:>24.1f}"
        )
        if planning:
            result = outcome.result
            per_call = (
                result.planning_seconds / result.planning_calls * 1000.0
                if result.planning_calls
                else 0.0
            )
            row += f"{per_call:>16.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_series(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    fmt: str = "{:.3f}",
) -> str:
    """A figure as a table: one x column, one column per series."""
    names = list(series)
    widths = [max(len(x_label), 10)] + [max(len(n), 12) for n in names]
    lines = [title]
    header = f"{x_label:>{widths[0]}}" + "".join(
        f"{name:>{width}}" for name, width in zip(names, widths[1:])
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{x:>{widths[0]}.6g}"
        for name, width in zip(names, widths[1:]):
            row += f"{fmt.format(series[name][i]):>{width}}"
        lines.append(row)
    return "\n".join(lines)


def turnaround_ratios(comparison: ComparisonResult, baseline: str = "FlowTime") -> dict[str, float]:
    """Each algorithm's ad-hoc turnaround as a multiple of *baseline*'s.

    The paper reports these as "2-10 times shorter average job turnaround
    time" (1/2 of CORA, 1/3 of FIFO, 1/10 of EDF, Fair 1.36x).
    """
    base = comparison.outcome(baseline).adhoc_turnaround_s
    if base <= 0:
        raise ValueError(f"baseline {baseline!r} has non-positive turnaround")
    return {
        outcome.name: outcome.adhoc_turnaround_s / base
        for outcome in comparison.outcomes
    }
