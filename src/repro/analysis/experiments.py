"""The comparison harness behind every Fig. 4/5-style experiment.

One call runs the same trace under several schedulers and collects the
paper's metrics.  Per-job deadline metrics are judged against *canonical
windows* — the resource-demand decomposition computed once from the
workload — identical for every algorithm, exactly as the paper's "90
deadline-aware jobs" are judged regardless of scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.estimation.history import RunHistory, synthesize_history
from repro.model.cluster import ClusterCapacity
from repro.obs import Observability
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import (
    adhoc_turnaround_seconds,
    deadline_deltas_seconds,
    missed_jobs,
    missed_workflows,
)
from repro.simulator.result import SimulationResult
from repro.workloads.traces import SyntheticTrace


@dataclass(frozen=True)
class AlgorithmOutcome:
    """Everything measured for one scheduler on one trace."""

    name: str
    result: SimulationResult
    deltas_seconds: Mapping[str, float]
    missed_jobs: tuple[str, ...]
    missed_workflows: tuple[str, ...]
    adhoc_turnaround_s: float

    @property
    def n_missed_jobs(self) -> int:
        return len(self.missed_jobs)

    @property
    def n_missed_workflows(self) -> int:
        return len(self.missed_workflows)


@dataclass(frozen=True)
class ComparisonResult:
    """Outcomes per algorithm plus the shared ground-truth windows."""

    outcomes: tuple[AlgorithmOutcome, ...]
    windows: Mapping[str, JobWindow]

    def outcome(self, name: str) -> AlgorithmOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(o.name for o in self.outcomes)


def canonical_windows(
    trace: SyntheticTrace, capacity: ClusterCapacity
) -> dict[str, JobWindow]:
    """The per-job deadline ground truth: decomposed once, shared by all."""
    windows: dict[str, JobWindow] = {}
    for workflow in trace.workflows:
        result = decompose_deadline(workflow, capacity)
        windows.update(result.windows)
    return windows


def run_one(
    name: str,
    trace: SyntheticTrace,
    capacity: ClusterCapacity,
    *,
    windows: Mapping[str, JobWindow] | None = None,
    history: RunHistory | None = None,
    config: SimulationConfig | None = None,
    scheduler_kwargs: dict | None = None,
    obs: Observability | None = None,
) -> AlgorithmOutcome:
    """Run one scheduler over a trace and measure the paper's metrics.

    ``obs`` injects an observability handle (trace sink, shared registry)
    into the simulation; by default each run gets a private registry and
    no trace.
    """
    if windows is None:
        windows = canonical_windows(trace, capacity)
    scheduler_kwargs = dict(scheduler_kwargs or {})
    if config is not None and config.lp_backend and name.startswith("FlowTime"):
        planner = dict(scheduler_kwargs.get("planner", {}))
        planner.setdefault("backend", config.lp_backend)
        scheduler_kwargs["planner"] = planner
    scheduler = make_scheduler(name, history=history, **scheduler_kwargs)
    sim = Simulation(
        cluster=capacity,
        scheduler=scheduler,
        workflows=trace.workflows,
        adhoc_jobs=trace.adhoc_jobs,
        config=config,
        obs=obs,
    )
    result = sim.run()
    return AlgorithmOutcome(
        name=name,
        result=result,
        deltas_seconds=deadline_deltas_seconds(result, windows),
        missed_jobs=tuple(missed_jobs(result, windows)),
        missed_workflows=tuple(missed_workflows(result)),
        adhoc_turnaround_s=adhoc_turnaround_seconds(result),
    )


def run_comparison(
    trace: SyntheticTrace,
    capacity: ClusterCapacity,
    algorithms: Sequence[str] = ("FlowTime", "CORA", "EDF", "Fair", "FIFO"),
    *,
    config: SimulationConfig | None = None,
    history: RunHistory | None = None,
    synthesize_morpheus_history: bool = True,
    scheduler_kwargs: Mapping[str, dict] | None = None,
) -> ComparisonResult:
    """Run several schedulers over the same trace (the Fig. 4 experiment).

    Args:
        trace: the shared workload.
        capacity: the shared cluster.
        algorithms: scheduler names in presentation order (defaults to the
            paper's Fig. 4 legend).
        config: simulator configuration.
        history: prior-run history for Morpheus; when None and Morpheus is
            requested, plausible history is synthesised from the workflows.
        scheduler_kwargs: per-algorithm constructor overrides.
    """
    windows = canonical_windows(trace, capacity)
    if history is None and "Morpheus" in algorithms and synthesize_morpheus_history:
        history = RunHistory()
        for i, workflow in enumerate(trace.workflows):
            synthesized = synthesize_history(workflow, capacity, seed=i)
            for template, runs in synthesized.runs.items():
                for run in runs:
                    history.add(template, run)
    outcomes = []
    for name in algorithms:
        kwargs = dict((scheduler_kwargs or {}).get(name, {}))
        outcomes.append(
            run_one(
                name,
                trace,
                capacity,
                windows=windows,
                history=history,
                config=config,
                scheduler_kwargs=kwargs,
            )
        )
    return ComparisonResult(outcomes=tuple(outcomes), windows=windows)
