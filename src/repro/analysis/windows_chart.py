"""ASCII rendering of decomposed deadline windows.

Shows what Stage 1 actually decided: one bar per job spanning its
``[release, deadline)`` window inside the workflow's own window — the
visual counterpart of the paper's Fig. 2/Fig. 3 discussion.  Used by the
CLI's ``decompose --chart``.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.decomposition_types import JobWindow
from repro.model.workflow import Workflow


def render_windows(
    workflow: Workflow,
    windows: Mapping[str, JobWindow],
    *,
    width: int = 60,
) -> str:
    """One row per job: ``=`` spans the job's window, ``|`` marks the
    workflow deadline column.  Jobs are ordered by (release, deadline)."""
    span = max(workflow.deadline_slot, max(w.deadline_slot for w in windows.values()))
    span = max(span - workflow.start_slot, 1)
    width = min(width, max(span, 8))

    def column(slot: int) -> int:
        rel = (slot - workflow.start_slot) / span
        return min(int(rel * width), width - 1)

    ordered = sorted(
        (windows[job_id] for job_id in workflow.job_ids),
        key=lambda w: (w.release_slot, w.deadline_slot, w.job_id),
    )
    label_width = max(len(w.job_id) for w in ordered)
    deadline_col = column(workflow.deadline_slot - 1)

    header = (
        f"{'job':<{label_width}}  "
        f"[slots {workflow.start_slot}..{workflow.deadline_slot})"
    )
    lines = [header]
    for window in ordered:
        start = column(window.release_slot)
        end = max(column(window.deadline_slot - 1), start)
        row = [" "] * width
        for k in range(start, end + 1):
            row[k] = "="
        if deadline_col < width:
            row[deadline_col] = "|" if row[deadline_col] == " " else "#"
        lines.append(
            f"{window.job_id:<{label_width}}  {''.join(row)} "
            f"[{window.release_slot},{window.deadline_slot})"
        )
    return "\n".join(lines)
