"""Multi-seed replication of experiments.

A single seed shows a shape; replication shows it is not a seed artefact.
:func:`replicate` runs the same comparison over several seeds and reports
mean / standard deviation / extrema per (algorithm, metric) — the numbers a
careful evaluation section would print next to every bar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.experiments import run_comparison
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import SyntheticTrace

#: Builds the (trace, cluster) for one seed.
SeedFactory = Callable[[int], tuple[SyntheticTrace, ClusterCapacity]]

METRICS = ("jobs_missed", "workflows_missed", "adhoc_turnaround_s")


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one metric for one algorithm across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @staticmethod
    def of(values: Sequence[float]) -> "MetricSummary":
        if not values:
            raise ValueError("cannot summarise an empty sample")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return MetricSummary(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            n=n,
        )

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f} [{self.minimum:.1f}, {self.maximum:.1f}]"


@dataclass(frozen=True)
class ReplicationResult:
    """Per-algorithm metric summaries across the replicated seeds."""

    seeds: tuple[int, ...]
    algorithms: tuple[str, ...]
    summaries: Mapping[str, Mapping[str, MetricSummary]]

    def summary(self, algorithm: str, metric: str) -> MetricSummary:
        return self.summaries[algorithm][metric]

    def format_table(self, metric: str) -> str:
        header = f"{'algorithm':<16}{metric + ' (mean ± std [min, max])':>42}"
        lines = [header, "-" * len(header)]
        for name in self.algorithms:
            lines.append(f"{name:<16}{str(self.summaries[name][metric]):>42}")
        return "\n".join(lines)


def replicate(
    factory: SeedFactory,
    seeds: Sequence[int],
    algorithms: Sequence[str],
    **comparison_kwargs,
) -> ReplicationResult:
    """Run the comparison once per seed and summarise each metric.

    Args:
        factory: maps a seed to a fresh (trace, cluster) pair.
        seeds: the replication seeds (>= 1).
        algorithms: scheduler names compared at every seed.
        comparison_kwargs: forwarded to
            :func:`repro.analysis.experiments.run_comparison`.
    """
    if not seeds:
        raise ValueError("replication needs at least one seed")
    per_algorithm: dict[str, dict[str, list[float]]] = {
        name: {metric: [] for metric in METRICS} for name in algorithms
    }
    for seed in seeds:
        trace, cluster = factory(seed)
        comparison = run_comparison(trace, cluster, algorithms, **comparison_kwargs)
        for outcome in comparison.outcomes:
            values = per_algorithm[outcome.name]
            values["jobs_missed"].append(float(outcome.n_missed_jobs))
            values["workflows_missed"].append(float(outcome.n_missed_workflows))
            values["adhoc_turnaround_s"].append(outcome.adhoc_turnaround_s)
    summaries = {
        name: {
            metric: MetricSummary.of(values)
            for metric, values in metrics.items()
        }
        for name, metrics in per_algorithm.items()
    }
    return ReplicationResult(
        seeds=tuple(seeds),
        algorithms=tuple(algorithms),
        summaries=summaries,
    )
