"""Parameter sweeps over the comparison harness.

The evaluation-style questions ("how does the miss rate move with deadline
looseness / ad-hoc load / cluster size?") are all one-dimensional sweeps of
:func:`repro.analysis.experiments.run_comparison` over regenerated traces.
:func:`sweep` runs them with a consistent result shape that the reporting
helpers can print directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.experiments import ComparisonResult, run_comparison
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import SyntheticTrace

#: Builds (trace, cluster) for one sweep point.
PointFactory = Callable[[float], tuple[SyntheticTrace, ClusterCapacity]]


@dataclass(frozen=True)
class SweepResult:
    """One metric series per algorithm over the swept parameter."""

    parameter: str
    xs: tuple[float, ...]
    comparisons: tuple[ComparisonResult, ...]

    def series(self, metric: str) -> Mapping[str, list[float]]:
        """Extract ``algorithm -> [value per x]`` for a metric.

        Metrics: "jobs_missed", "workflows_missed", "adhoc_turnaround_s".
        """
        extractors = {
            "jobs_missed": lambda o: float(o.n_missed_jobs),
            "workflows_missed": lambda o: float(o.n_missed_workflows),
            "adhoc_turnaround_s": lambda o: o.adhoc_turnaround_s,
        }
        try:
            extract = extractors[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; available: {sorted(extractors)}"
            ) from None
        names = self.comparisons[0].names if self.comparisons else ()
        return {
            name: [extract(cmp.outcome(name)) for cmp in self.comparisons]
            for name in names
        }


def sweep(
    parameter: str,
    xs: Sequence[float],
    factory: PointFactory,
    algorithms: Sequence[str],
    **comparison_kwargs,
) -> SweepResult:
    """Run the comparison at every point of a one-dimensional sweep.

    Args:
        parameter: name of the swept quantity (for reports).
        xs: the sweep points.
        factory: maps a sweep point to a fresh (trace, cluster) pair.
        algorithms: scheduler names to compare at every point.
        comparison_kwargs: forwarded to :func:`run_comparison`.
    """
    if not xs:
        raise ValueError("sweep needs at least one point")
    comparisons = []
    for x in xs:
        trace, cluster = factory(x)
        comparisons.append(
            run_comparison(trace, cluster, algorithms, **comparison_kwargs)
        )
    return SweepResult(
        parameter=parameter, xs=tuple(xs), comparisons=tuple(comparisons)
    )
