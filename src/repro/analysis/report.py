"""One-shot reproduction report.

``generate_report()`` re-runs the paper's core experiments (Fig. 1 exactly;
Fig. 4 at a configurable scale; Fig. 5's slack ablation; timing samples for
Fig. 6/7) and renders a single Markdown document — the artefact a reviewer
or downstream user regenerates with one command::

    python -m repro report --out report.md

The full benchmark suite (``pytest benchmarks/``) remains the authoritative
regeneration of every figure; the report trades exhaustiveness for a
single-command, single-file summary.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.experiments import run_comparison, run_one
from repro.analysis.reporting import (
    format_phase_table,
    format_slowest_slot,
    turnaround_ratios,
)
from repro.obs import Observability
from repro.core.decomposition import decompose_deadline
from repro.core.flowtime import PlannerConfig
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.estimation.errors import ErrorModel, apply_workflow_estimation_errors
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import adhoc_turnaround_seconds
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.dag_generators import chain_workflow, random_dag_edges
from repro.workloads.traces import SyntheticTrace, generate_trace


def _fig1_section() -> list[str]:
    cluster = ClusterCapacity.uniform(cpu=4, mem=8)
    w_spec = TaskSpec(count=2, duration_slots=50, demand=ResourceVector({CPU: 2, MEM: 2}))
    jobs = [Job(job_id=f"W1-J{i}", tasks=w_spec, workflow_id="W1") for i in (1, 2)]
    workflow = Workflow.from_jobs("W1", jobs, [("W1-J1", "W1-J2")], 0, 200)
    a_spec = TaskSpec(count=2, duration_slots=100, demand=ResourceVector({CPU: 1, MEM: 1}))
    adhoc = [
        Job(job_id="A1", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=0),
        Job(job_id="A2", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=100),
    ]
    rows = []
    for label, scheduler, paper in (
        ("EDF", EdfScheduler(), 150),
        ("FlowTime", FlowTimeScheduler(PlannerConfig(slack_slots=0)), 100),
    ):
        result = Simulation(
            cluster, scheduler, workflows=[workflow], adhoc_jobs=adhoc,
            config=SimulationConfig(slot_seconds=1.0),
        ).run()
        rows.append((label, adhoc_turnaround_seconds(result), paper))
    lines = [
        "## Fig. 1 — motivating example",
        "",
        "| scheduler | avg ad-hoc turnaround | paper |",
        "|---|---|---|",
    ]
    for label, measured, paper in rows:
        lines.append(f"| {label} | {measured:.0f} | {paper} |")
    lines.append("")
    return lines


def _fig4_section(scale: str, seed: int) -> list[str]:
    if scale == "full":
        cluster = ClusterCapacity.uniform(cpu=96, mem=192)
        trace = generate_trace(
            n_workflows=5, jobs_per_workflow=18, n_adhoc=40, capacity=cluster,
            looseness=(4.0, 8.0), adhoc_rate_per_slot=0.7,
            workflow_spread_slots=70, seed=seed,
        )
    else:
        cluster = ClusterCapacity.uniform(cpu=64, mem=128)
        trace = generate_trace(
            n_workflows=4, jobs_per_workflow=12, n_adhoc=30, capacity=cluster,
            looseness=(4.0, 8.0), adhoc_rate_per_slot=0.7,
            workflow_spread_slots=50, seed=seed,
        )
    comparison = run_comparison(
        trace, cluster, ("FlowTime", "CORA", "EDF", "Fair", "FIFO")
    )
    ratios = turnaround_ratios(comparison)
    lines = [
        f"## Fig. 4 — mixed cluster ({trace.n_deadline_jobs} deadline jobs, "
        f"{len(trace.adhoc_jobs)} ad-hoc)",
        "",
        "| algorithm | jobs missed | workflows missed | ad-hoc turnaround (s) | vs FlowTime |",
        "|---|---|---|---|---|",
    ]
    for outcome in comparison.outcomes:
        lines.append(
            f"| {outcome.name} | {outcome.n_missed_jobs} | "
            f"{outcome.n_missed_workflows} | {outcome.adhoc_turnaround_s:.1f} | "
            f"{ratios[outcome.name]:.2f}x |"
        )
    lines.append("")
    lines.append(
        "Paper: FlowTime 0 missed; Fair 1.36x, CORA 2x, FIFO 3x, EDF 10x "
        "its ad-hoc turnaround."
    )
    lines.append("")
    return lines


def _fig5_section() -> list[str]:
    from repro.core.critical_path import critical_path_length

    cluster = ClusterCapacity.uniform(cpu=128, mem=256)
    spec = TaskSpec(count=16, duration_slots=10, demand=ResourceVector({CPU: 2, MEM: 4}))
    workflows = []
    for i in range(4):
        start = i * 20
        skeleton = chain_workflow(f"wf{i}", 4, start, start + 10_000, spec_of=spec)
        cp = critical_path_length(skeleton, cluster, cluster_aware=True)
        workflow = chain_workflow(f"wf{i}", 4, start, start + int(cp * 1.8), spec_of=spec)
        workflows.append(
            apply_workflow_estimation_errors(workflow, ErrorModel(1.0, 1.15), seed=i)
        )
    adhoc = adhoc_stream(
        25, rate_per_slot=0.3,
        horizon_slots=max(w.deadline_slot for w in workflows), seed=99,
    )
    trace = SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=tuple(adhoc))
    faithful = {"planner": {"front_load": False}, "work_conserving": False}
    comparison = run_comparison(
        trace, cluster, ("FlowTime", "FlowTime_no_ds"),
        scheduler_kwargs={"FlowTime": dict(faithful), "FlowTime_no_ds": dict(faithful)},
    )
    lines = [
        "## Fig. 5 — deadline slack (under-estimation noise up to 1.15x)",
        "",
        "| variant | jobs missed | ad-hoc turnaround (s) |",
        "|---|---|---|",
    ]
    for outcome in comparison.outcomes:
        lines.append(
            f"| {outcome.name} | {outcome.n_missed_jobs} | "
            f"{outcome.adhoc_turnaround_s:.1f} |"
        )
    lines.append("")
    lines.append("Paper: 0 vs 5 misses; turnaround 522.5 vs 531.1 s.")
    lines.append("")
    return lines


def _timing_section() -> list[str]:
    # Fig. 6 sample: decomposition at the top of the paper's sweep.
    rng = np.random.default_rng(200)
    spec = TaskSpec(count=8, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4}))
    jobs = [Job(job_id=f"w-j{i}", tasks=spec, workflow_id="w") for i in range(200)]
    edges = [(f"w-j{a}", f"w-j{b}") for a, b in random_dag_edges(200, 6000, rng)]
    workflow = Workflow.from_jobs("w", jobs, edges, 0, 4000)
    cluster = ClusterCapacity.uniform(cpu=500, mem=1024)
    start = time.perf_counter()
    decompose_deadline(workflow, cluster)
    decomposition_ms = (time.perf_counter() - start) * 1000

    # Fig. 7 sample: 100 jobs, 100 slots, 500 cores / 1 TB.
    rng = np.random.default_rng(7)
    entries = []
    for i in range(100):
        release = int(rng.integers(0, 50))
        deadline = int(rng.integers(release + 10, 101))
        parallel = int(rng.integers(4, 16))
        units = min(int(rng.integers(10, 200)), (deadline - release) * parallel)
        entries.append(
            ScheduleEntry(
                job_id=f"j{i}", release=release, deadline=deadline, units=units,
                unit_demand=ResourceVector({CPU: int(rng.integers(1, 3)), MEM: 4}),
                max_parallel=parallel,
            )
        )
    caps = np.zeros((100, 2))
    caps[:, 0], caps[:, 1] = 500, 1024
    problem = build_schedule_problem(entries, caps, (CPU, MEM))
    start = time.perf_counter()
    result = lexmin_schedule(problem, max_rounds=1)
    lp_ms = (time.perf_counter() - start) * 1000
    status = "optimal" if result.is_optimal else result.status

    return [
        "## Fig. 6 / Fig. 7 — algorithm latency samples",
        "",
        f"* deadline decomposition, 200 nodes / ~6000 edges: "
        f"**{decomposition_ms:.1f} ms** (paper ceiling: 3000 ms)",
        f"* scheduling LP, 100 jobs x 100 slots on 500 cores / 1 TB: "
        f"**{lp_ms:.0f} ms** ({status}) — far below one 10 s slot",
        "",
    ]


def _phase_latency_section(seed: int) -> list[str]:
    """Per-phase wall-clock profile of one instrumented FlowTime run.

    This is the live-run counterpart of the Fig. 6/7 microbenchmarks: the
    same latencies (decomposition, LP build/solve, per-slot decision)
    measured where they actually occur, plus the engine's slowest-slot
    breakdown — the first place to look when a run misses deadlines.
    """
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = generate_trace(
        n_workflows=3, jobs_per_workflow=10, n_adhoc=20, capacity=cluster,
        looseness=(4.0, 8.0), adhoc_rate_per_slot=0.7,
        workflow_spread_slots=40, seed=seed,
    )
    outcome = run_one("FlowTime", trace, cluster, obs=Observability())
    lines = [
        "## Per-phase latency profile (instrumented FlowTime run)",
        "",
        "```",
        format_phase_table(outcome.result.metrics),
    ]
    slowest = format_slowest_slot(outcome.result.metrics)
    if slowest:
        lines.append(slowest)
    lines += ["```", ""]
    return lines


def generate_report(*, scale: str = "quick", seed: int = 15) -> str:
    """Render the Markdown reproduction report.

    Args:
        scale: "quick" (default) or "full" (paper-size Fig. 4 workload).
        seed: workload seed for the Fig. 4 section.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    lines = [
        "# FlowTime reproduction report",
        "",
        f"Scale: {scale}; workload seed: {seed}.  Shapes, not absolute",
        "numbers, are the claims under test (see EXPERIMENTS.md).",
        "",
    ]
    lines += _fig1_section()
    lines += _fig4_section(scale, seed)
    lines += _fig5_section()
    lines += _timing_section()
    lines += _phase_latency_section(seed)
    return "\n".join(lines)
