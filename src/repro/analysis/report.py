"""Deprecated shim: the report generator moved to ``repro.analysis.reporting``.

Import :func:`repro.analysis.reporting.run_report` (re-exported from
:mod:`repro.analysis`) instead.  This module remains importable for one
release and will then be removed.
"""

from __future__ import annotations

import warnings

from repro.analysis.reporting import generate_report, run_report

__all__ = ["generate_report", "run_report"]

warnings.warn(
    "repro.analysis.report is deprecated; use repro.analysis.reporting "
    "(run_report) instead",
    DeprecationWarning,
    stacklevel=2,
)
