"""Experiment harness and paper-style reporting."""

from repro.analysis.experiments import (
    AlgorithmOutcome,
    ComparisonResult,
    canonical_windows,
    run_comparison,
    run_one,
)
from repro.analysis.gantt import render_gantt, render_utilization
from repro.analysis.reporting import (
    format_comparison_table,
    format_series,
    run_report,
)
from repro.analysis.stats import MetricSummary, ReplicationResult, replicate

__all__ = [
    "AlgorithmOutcome",
    "ComparisonResult",
    "canonical_windows",
    "MetricSummary",
    "ReplicationResult",
    "format_comparison_table",
    "format_series",
    "render_gantt",
    "render_utilization",
    "replicate",
    "run_comparison",
    "run_one",
    "run_report",
]
