"""ASCII Gantt charts and utilisation skylines.

Purely textual (the library has no plotting dependency): render what a
schedule *did* — which jobs executed when, and how full the cluster was —
the way the paper's Fig. 1 panels sketch it.  Requires a simulation run
with ``SimulationConfig(record_execution=True)`` for the per-job chart; the
skyline only needs the usage matrix every run records.
"""

from __future__ import annotations

import numpy as np

from repro.model.cluster import ClusterCapacity
from repro.simulator.metrics import utilization_timeline
from repro.simulator.result import SimulationResult

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _bucketize(values: np.ndarray, width: int) -> np.ndarray:
    """Compress a per-slot series to *width* buckets by taking means."""
    n = len(values)
    if n == 0:
        return np.zeros(width)
    edges = np.linspace(0, n, width + 1).astype(int)
    out = np.zeros(width)
    for b in range(width):
        lo, hi = edges[b], max(edges[b + 1], edges[b] + 1)
        out[b] = float(np.mean(values[lo:hi])) if lo < n else 0.0
    return out


def render_utilization(
    result: SimulationResult, cluster: ClusterCapacity, *, width: int = 72
) -> str:
    """One-line sparkline of max-over-resources cluster utilisation."""
    timeline = utilization_timeline(result, cluster)
    buckets = np.clip(_bucketize(timeline, min(width, max(result.n_slots, 1))), 0, 1)
    chars = "".join(_BLOCKS[int(round(v * (len(_BLOCKS) - 1)))] for v in buckets)
    return f"util |{chars}| 0..{result.n_slots} slots (peak {timeline.max():.0%})"


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 72,
    jobs: list[str] | None = None,
    max_rows: int = 40,
) -> str:
    """Per-job execution chart.

    One row per job: ``.`` = submitted but idle, ``#`` = executing in (part
    of) the bucket, blank = not yet submitted / already done.  Rows are
    ordered by first execution.  Raises ValueError when the run did not
    record execution.
    """
    if not result.execution:
        raise ValueError(
            "no execution record: run with SimulationConfig(record_execution=True)"
        )
    n_slots = result.n_slots
    width = min(width, max(n_slots, 1))
    selected = jobs if jobs is not None else list(result.jobs)

    # Per-job executed-units series.
    series: dict[str, np.ndarray] = {
        job_id: np.zeros(n_slots) for job_id in selected
    }
    for slot, executed in enumerate(result.execution):
        for job_id, units in executed.items():
            if job_id in series:
                series[job_id][slot] = units

    def first_active(job_id: str) -> int:
        nz = np.flatnonzero(series[job_id])
        return int(nz[0]) if nz.size else n_slots

    ordered = sorted(selected, key=lambda j: (first_active(j), j))[:max_rows]
    label_width = max((len(j) for j in ordered), default=4)
    lines = []
    for job_id in ordered:
        record = result.jobs[job_id]
        active = _bucketize(series[job_id], width) > 0
        row = []
        edges = np.linspace(0, n_slots, width + 1).astype(int)
        for b in range(width):
            slot = edges[b]
            if active[b]:
                row.append("#")
            elif record.arrival_slot <= slot and (
                record.completion_slot is None or slot <= record.completion_slot
            ):
                row.append(".")
            else:
                row.append(" ")
        lines.append(f"{job_id:<{label_width}} |{''.join(row)}|")
    header = f"{'job':<{label_width}} |{'time -> (' + str(n_slots) + ' slots)':<{width}}|"
    return "\n".join([header] + lines)
