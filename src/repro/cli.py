"""Command-line interface.

The subcommands cover the library's workflow end to end::

    python -m repro generate-trace --out trace.json --seed 15
    python -m repro decompose --trace trace.json --workflow wf0
    python -m repro run --trace trace.json --scheduler FlowTime --gantt
    python -m repro run --trace trace.json --trace-out run.jsonl --metrics
    python -m repro run --trace trace.json --verify
    python -m repro verify run.jsonl --workload trace.json
    python -m repro compare --trace trace.json
    python -m repro serve --port 8080 --batch-window 0.1
    python -m repro trace query run.jsonl --request 4f2a...
    python -m repro top --url http://127.0.0.1:8080

Cluster size is given with ``--cpu/--mem`` (every command defaults to the
64-core / 128-GB mixed-cluster setup the examples use).  Traces are the
replayable JSON files of :mod:`repro.workloads.traces`, so a comparison run
on another machine sees byte-identical workloads.

Global flags (before the subcommand): ``--version``; ``-v/--verbose`` and
``-q/--quiet`` set the observability log level (repeat ``-v`` for debug);
``-v`` on a ``run`` also prints the per-phase timing table.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

from repro.analysis.experiments import run_comparison, run_one
from repro.analysis.gantt import render_gantt, render_utilization
from repro.analysis.reporting import (
    format_comparison_table,
    format_phase_table,
    format_slowest_slot,
    turnaround_ratios,
)
from repro.core.decomposition import decompose_deadline
from repro.lp import available_backends
from repro.model.cluster import ClusterCapacity
from repro.obs import JsonlSink, Observability
from repro.schedulers.registry import available_schedulers
from repro.simulator.engine import SimulationConfig
from repro.workloads.traces import generate_trace, load_trace, save_trace


def verbosity_to_level(quiet: bool, verbose: int) -> int:
    """Map -q/-v flags to a logging level (the obs layer's log level).

    Default is WARNING (instrumentation is silent unless asked); ``-v``
    surfaces run milestones (INFO), ``-vv`` the debug firehose; ``-q``
    keeps only errors.
    """
    if quiet:
        return logging.ERROR
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return logging.WARNING


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cpu", type=int, default=64, help="cluster CPU cores")
    parser.add_argument("--mem", type=int, default=128, help="cluster memory (GB)")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """Failure/estimation-error injection flags shared by run and serve."""
    fault = parser.add_argument_group(
        "fault injection",
        "seeded robustness knobs (docs/ROBUSTNESS.md); all off by default",
    )
    fault.add_argument(
        "--setback-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="per-job/slot probability of a progress setback (lost work)",
    )
    fault.add_argument(
        "--max-setback",
        type=int,
        default=4,
        metavar="UNITS",
        help="a setback destroys 1..UNITS executed task-slots (uniform)",
    )
    fault.add_argument(
        "--error-low",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="lower bound of the multiplicative duration-error factor "
        "(true = estimate * factor)",
    )
    fault.add_argument(
        "--error-high",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="upper bound of the duration-error factor",
    )
    fault.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for setback and duration-error draws",
    )


def _fault_models(args: argparse.Namespace):
    """(FailureModel | None, ErrorModel | None) from the fault flags."""
    from repro.estimation.errors import ErrorModel
    from repro.simulator.failures import FailureModel

    failures = None
    if args.setback_prob > 0.0:
        failures = FailureModel(
            setback_prob=args.setback_prob,
            max_setback_units=args.max_setback,
            seed=args.fault_seed,
        )
    error_model = None
    if (args.error_low, args.error_high) != (1.0, 1.0):
        error_model = ErrorModel(low=args.error_low, high=args.error_high)
    return failures, error_model


def _cluster(args: argparse.Namespace) -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=args.cpu, mem=args.mem)


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlowTime (ICDCS 2018) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info + timing tables, -vv debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="log errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate-trace", help="generate a replayable workload trace (JSON)"
    )
    gen.add_argument("--out", required=True, help="output JSON path")
    gen.add_argument("--workflows", type=int, default=4)
    gen.add_argument("--jobs", type=int, default=12, help="jobs per workflow")
    gen.add_argument("--adhoc", type=int, default=30, help="number of ad-hoc jobs")
    gen.add_argument(
        "--looseness",
        type=float,
        nargs=2,
        default=(4.0, 8.0),
        metavar=("MIN", "MAX"),
        help="deadline as a multiple of the critical path",
    )
    gen.add_argument("--rate", type=float, default=0.7, help="ad-hoc arrivals/slot")
    gen.add_argument("--spread", type=int, default=50, help="workflow start spread")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--scientific",
        action="store_true",
        help="use Bharathi scientific shapes instead of layered random DAGs",
    )
    _add_cluster_args(gen)

    dec = sub.add_parser(
        "decompose", help="show the decomposed per-job deadline windows"
    )
    dec.add_argument("--trace", required=True)
    dec.add_argument("--workflow", help="workflow id (default: all)")
    dec.add_argument(
        "--chart", action="store_true", help="render windows as ASCII bars"
    )
    _add_cluster_args(dec)

    run = sub.add_parser("run", help="simulate one scheduler over a trace")
    run.add_argument("--trace", required=True)
    run.add_argument(
        # Resolved from the live registry, so schedulers added via
        # register_scheduler() are immediately accepted with no CLI edits.
        "--scheduler", default="FlowTime", choices=sorted(available_schedulers())
    )
    run.add_argument("--slot-seconds", type=float, default=10.0)
    run.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="disable the FlowTime plan cache (ablation; ignored by "
        "schedulers without a planner)",
    )
    run.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable warm-started lexmin solves (ablation; ignored by "
        "schedulers without a planner)",
    )
    run.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL event trace of the run (arrivals, placements, "
        "completions, deadline misses) to PATH",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print the per-phase timing table (decompose, lp.build, "
        "lp.solve, sched.decide, sim.slot, ...)",
    )
    run.add_argument(
        "--solve-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-LP-solve wall-time budget; a blown budget triggers the "
        "scheduler's degraded mode instead of stalling the loop "
        "(FlowTime only)",
    )
    run.add_argument(
        # Choices come from the live solver registry, mirroring --scheduler:
        # backends added via repro.lp.register_backend() appear here.
        "--lp-backend",
        default=None,
        choices=sorted(available_backends()),
        help="LP solver backend for planner-based schedulers (default: the "
        "planner's own default, highs; 'fastsolve' lowers structured round "
        "subproblems to a combinatorial flow solve)",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="run the independent verification layer (docs/VERIFICATION.md): "
        "per-slot runtime assertions plus a full end-of-run validation and "
        "reported-metric recomputation; exits 1 on any violation",
    )
    run.add_argument(
        "--engine",
        default="slots",
        choices=["slots", "events"],
        help="engine core: 'slots' steps every slot; 'events' jumps idle "
        "virtual-time gaps via an event queue (outcome-identical; see "
        "docs/PERFORMANCE.md)",
    )
    _add_cluster_args(run)
    _add_fault_args(run)

    ver = sub.add_parser(
        "verify",
        help="independently validate a JSONL run trace",
        description="Re-derive correctness from a run's JSONL event trace "
        "(written by `repro run --trace-out` or `repro serve --trace-out`): "
        "lifecycle ordering, unique completions, placement windows. Given "
        "the workload (--workload) the full set applies: per-slot capacity, "
        "DAG precedence, demand conservation, and recomputed headline "
        "metrics. Exits 1 on any violation.",
    )
    ver.add_argument("run_trace", metavar="RUN_JSONL", help="JSONL event trace")
    ver.add_argument(
        "--workload",
        metavar="TRACE_JSON",
        help="the workload trace the run executed (enables capacity, "
        "precedence, and conservation checks plus metric recomputation)",
    )
    ver.add_argument(
        "--slot-seconds",
        type=float,
        default=None,
        help="slot length for metric conversion (default: the run_start "
        "event's recorded value)",
    )
    _add_cluster_args(ver)

    report = sub.add_parser(
        "report", help="regenerate the core paper figures as one Markdown file"
    )
    report.add_argument("--out", help="write to this path (default: stdout)")
    report.add_argument("--scale", choices=["quick", "full"], default="quick")
    report.add_argument("--seed", type=int, default=15)

    cmp_parser = sub.add_parser(
        "compare", help="run several schedulers over the same trace"
    )
    cmp_parser.add_argument("--trace", required=True)
    cmp_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["FlowTime", "CORA", "EDF", "Fair", "FIFO"],
        choices=sorted(available_schedulers()),
    )
    _add_cluster_args(cmp_parser)

    serve = sub.add_parser(
        "serve",
        help="run the online scheduler service behind a JSON/HTTP API",
        description="Start a long-running scheduler service. Submit "
        "workflows (POST /workflows) and ad-hoc jobs (POST /jobs) in the "
        "trace wire format; inspect GET /plan, /status, /metrics. SIGTERM "
        "or Ctrl-C drains gracefully: admission stops, in-flight work "
        "finishes, the trace flushes, and a run summary prints.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--scheduler", default="FlowTime", choices=sorted(available_schedulers())
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard the cluster into N independent scheduler services "
        "behind a routing frontend (docs/SHARDING.md); each shard owns a "
        "1/N capacity slice, its own journal (--journal PATH.shardN) and "
        "solver stack. 1 (default) serves the classic single service",
    )
    serve.add_argument(
        "--rebalance-interval",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="skyline rebalancer cycle period with --shards > 1 "
        "(0 disables periodic rebalancing; POST /rebalance still works)",
    )
    serve.add_argument(
        "--reconcile-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="periodic migration-orphan reconcile period with --shards > 1 "
        "(0 disables the loop; POST /reconcile still works)",
    )
    serve.add_argument(
        "--failover",
        action="store_true",
        help="with --shards > 1: run the supervisor daemon — restart dead "
        "shards and, past the --dead-after grace, re-home their committed "
        "workflows from their journals (docs/ROBUSTNESS.md)",
    )
    serve.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="failure-detector heartbeat period with --shards > 1",
    )
    serve.add_argument(
        "--dead-after",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how long a shard must fail probes before it is declared "
        "dead (and, with --failover, eligible for workflow re-homing)",
    )
    serve.add_argument("--slot-seconds", type=float, default=10.0)
    serve.add_argument(
        "--engine",
        default="slots",
        choices=["slots", "events"],
        help="engine core for each service: 'events' makes idle virtual "
        "time and drain cost proportional to actual work (outcome-"
        "identical to 'slots'; jumping is disabled under --realtime)",
    )
    serve.add_argument(
        "--async",
        dest="async_http",
        action="store_true",
        help="serve over the asyncio HTTP frontend instead of the "
        "thread-per-connection stdlib server (single service only; the "
        "high-throughput path — see BENCH_throughput.json)",
    )
    serve.add_argument(
        "--lp-backend",
        default=None,
        choices=sorted(available_backends()),
        help="LP solver backend for planner-based schedulers (see "
        "`repro run --lp-backend`)",
    )
    serve.add_argument(
        "--realtime",
        action="store_true",
        help="advance one slot per --slot-seconds of wall time (live "
        "pacing); default is virtual time (as fast as work exists)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="re-planning batch window: submissions arriving within this "
        "window coalesce into one plan call",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="max outstanding ad-hoc jobs before shedding (backpressure)",
    )
    serve.add_argument(
        "--no-admission",
        action="store_true",
        help="admit every workflow without the feasibility check",
    )
    serve.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL event trace (flushed on drain) to PATH",
    )
    serve.add_argument(
        "--trace-rotate-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size-cap the --trace-out file: rotate to PATH.1..PATH.N when "
        "it would exceed MB megabytes, so a long-running server cannot "
        "fill the disk (default: unbounded)",
    )
    serve.add_argument(
        "--trace-rotate-backups",
        type=int,
        default=3,
        metavar="N",
        help="rotated generations to keep (with --trace-rotate-mb)",
    )
    slo = serve.add_argument_group(
        "service-level objectives", "thresholds behind GET /slo"
    )
    slo.add_argument(
        "--slo-objective",
        type=float,
        default=0.99,
        metavar="FRACTION",
        help="fraction of admitted workflows that must meet their deadline",
    )
    slo.add_argument(
        "--slo-decide-p99",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="decide-latency p99 ceiling",
    )
    slo.add_argument(
        "--slo-window",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="rolling SLO evaluation window (burn rate, rolling p99)",
    )
    serve.add_argument(
        "--journal",
        metavar="PATH",
        help="write-ahead journal of accepted submissions (JSONL, fsync on "
        "accept); an existing journal is replayed on start, so a killed "
        "service restarts with zero lost accepted work",
    )
    serve.add_argument(
        "--solve-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-LP-solve wall-time budget; a blown budget triggers "
        "degraded mode instead of stalling the loop (FlowTime only)",
    )
    chaos = serve.add_argument_group(
        "chaos injection",
        "seeded solver-fault injection for robustness experiments "
        "(scripts/chaos_smoke.py drives these)",
    )
    chaos.add_argument(
        "--chaos-fault-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="per-solve-attempt probability of an injected solver fault",
    )
    chaos.add_argument(
        "--chaos-slow-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="per-attempt probability of an injected slow solve",
    )
    chaos.add_argument(
        "--chaos-slow-s",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="duration of an injected slow solve",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, help="chaos fault-plan seed"
    )
    _add_cluster_args(serve)
    _add_fault_args(serve)

    trace_parser = sub.add_parser(
        "trace",
        help="query a JSONL run trace",
        description="Inspect a run's JSONL event trace (written by "
        "`repro run --trace-out` or `repro serve --trace-out`).",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_query = trace_sub.add_parser(
        "query",
        help="reconstruct one request's timeline by its request id",
        description="Join every event belonging to one submission — "
        "admission decision, arrivals, placements, completion, deadline "
        "outcome — out of the flat trace, by the X-Request-Id it was "
        "submitted under.",
    )
    trace_query.add_argument(
        "run_trace", metavar="RUN_JSONL", help="JSONL event trace"
    )
    trace_query.add_argument(
        "--request", required=True, metavar="ID", help="request id to join"
    )
    trace_query.add_argument(
        "--json",
        action="store_true",
        help="emit the timeline as JSON instead of text",
    )
    trace_query.add_argument(
        "--max-events",
        type=int,
        default=50,
        help="cap on listed events in text output",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running scheduler service",
        description="Poll /status, /metrics and /slo of a `repro serve` "
        "instance and render throughput, rolling latencies, queue depth, "
        "and the SLO error budget. Ctrl-C exits.",
    )
    top.add_argument(
        "--url", required=True, help="server root, e.g. http://127.0.0.1:8080"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (seconds)"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render this many frames, then exit (default: loop forever)",
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = generate_trace(
        n_workflows=args.workflows,
        jobs_per_workflow=args.jobs,
        n_adhoc=args.adhoc,
        capacity=cluster,
        looseness=tuple(args.looseness),
        adhoc_rate_per_slot=args.rate,
        workflow_spread_slots=args.spread,
        scientific=args.scientific,
        seed=args.seed,
    )
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {trace.n_deadline_jobs} deadline jobs in "
        f"{len(trace.workflows)} workflows + {len(trace.adhoc_jobs)} ad-hoc jobs"
    )
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = load_trace(args.trace)
    workflows = [
        wf
        for wf in trace.workflows
        if args.workflow is None or wf.workflow_id == args.workflow
    ]
    if not workflows:
        print(f"error: no workflow {args.workflow!r} in {args.trace}", file=sys.stderr)
        return 2
    for workflow in workflows:
        result = decompose_deadline(workflow, cluster)
        method = "critical-path fallback" if result.used_fallback else "resource-demand"
        print(
            f"{workflow.workflow_id}: window [{workflow.start_slot}, "
            f"{workflow.deadline_slot}), {method}, "
            f"{len(result.node_sets)} levels"
        )
        if args.chart:
            from repro.analysis.windows_chart import render_windows

            print(render_windows(workflow, result.windows))
        else:
            for job_id in sorted(result.windows):
                window = result.windows[job_id]
                print(
                    f"  {job_id:<24} [{window.release_slot:>5}, "
                    f"{window.deadline_slot:>5})"
                )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    cluster = _cluster(args)
    trace = load_trace(args.trace)
    failures, error_model = _fault_models(args)
    if error_model is not None:
        # Estimates stay put; the true structure deviates per the model —
        # the scheduler plans against erroneous estimates while the engine
        # executes reality (EXT-1 style robustness runs).
        from repro.estimation.errors import (
            apply_estimation_errors,
            apply_workflow_estimation_errors,
        )

        trace = dc_replace(
            trace,
            workflows=tuple(
                apply_workflow_estimation_errors(
                    wf, error_model, seed=args.fault_seed + i
                )
                for i, wf in enumerate(trace.workflows)
            ),
            adhoc_jobs=tuple(
                apply_estimation_errors(
                    trace.adhoc_jobs, error_model, seed=args.fault_seed
                )
            ),
        )
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    obs = Observability(
        sink=sink, level=verbosity_to_level(args.quiet, args.verbose)
    )
    planner_opts = {}
    if args.no_plan_cache:
        planner_opts["plan_cache"] = False
    if args.no_warm_start:
        planner_opts["warm_start"] = False
    if args.solve_budget is not None:
        planner_opts["solve_budget_s"] = args.solve_budget
    scheduler_kwargs = (
        {"planner": planner_opts}
        if planner_opts and args.scheduler.startswith("FlowTime")
        else None
    )
    from repro.verify import VerificationError

    try:
        with obs:
            outcome = run_one(
                args.scheduler,
                trace,
                cluster,
                config=SimulationConfig(
                    slot_seconds=args.slot_seconds,
                    record_execution=args.gantt,
                    failures=failures,
                    verify=args.verify,
                    lp_backend=args.lp_backend,
                    engine=args.engine,
                ),
                scheduler_kwargs=scheduler_kwargs,
                obs=obs,
            )
    except VerificationError as error:
        print(error.report.render(), file=sys.stderr)
        return 1
    result = outcome.result
    if args.verify:
        report = result.verification
        # The runtime layer passed; also cross-check the reported metrics
        # against an independent recomputation from the raw records.
        from repro.analysis.experiments import canonical_windows
        from repro.simulator.metrics import summarize
        from repro.verify import ScheduleValidator

        windows = canonical_windows(trace, cluster)
        validator = ScheduleValidator(
            cluster,
            workflows=trace.workflows,
            jobs=trace.adhoc_jobs,
            windows=windows,
            allow_setbacks=failures is not None,
        )
        validator.check_windows(result, report)
        validator.check_reported(result, summarize(result, windows), report)
        if not report.ok:
            print(report.render(), file=sys.stderr)
            return 1
        print(report.summary())
    turnaround = outcome.adhoc_turnaround_s
    turnaround_text = (
        "n/a (no ad-hoc jobs)" if turnaround != turnaround else f"{turnaround:.1f} s"
    )
    print(f"scheduler:            {args.scheduler}")
    print(f"finished:             {result.finished} ({result.n_slots} slots)")
    print(f"jobs missed:          {outcome.n_missed_jobs}")
    print(f"workflows missed:     {outcome.n_missed_workflows}")
    print(f"ad-hoc turnaround:    {turnaround_text}")
    if sink is not None:
        print(f"trace:                wrote {sink.n_events} events to {args.trace_out}")
    print(render_utilization(result, cluster))
    if args.metrics or args.verbose:
        print()
        print(format_phase_table(result.metrics))
        slowest = format_slowest_slot(result.metrics)
        if slowest:
            print(slowest)
    if args.gantt:
        print()
        print(render_gantt(result))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.obs import read_trace
    from repro.verify import recompute_trace_metrics, validate_trace

    events = read_trace(args.run_trace)
    if not events:
        print(f"error: {args.run_trace} contains no events", file=sys.stderr)
        return 2
    trace = windows = capacity = None
    if args.workload:
        from repro.analysis.experiments import canonical_windows

        trace = load_trace(args.workload)
        capacity = _cluster(args)
        windows = canonical_windows(trace, capacity)
    report = validate_trace(
        events, trace=trace, capacity=capacity, windows=windows
    )
    print(report.render())
    try:
        metrics = recompute_trace_metrics(
            events, trace=trace, windows=windows, slot_seconds=args.slot_seconds
        )
    except ValueError as error:
        print(f"metrics: not recomputable ({error})")
    else:
        turnaround = metrics["adhoc_turnaround_s"]
        print("recomputed from the trace:")
        if windows:
            print(f"  jobs missed:        {int(metrics['jobs_missed'])}")
            print(f"  max delta:          {metrics['max_delta_s']:.1f} s")
        print(f"  workflows missed:   {int(metrics['workflows_missed'])}")
        print(
            "  ad-hoc turnaround:  "
            + ("n/a" if turnaround is None else f"{turnaround:.1f} s")
        )
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    # Only `trace query` exists today; argparse enforces the subcommand.
    import json as json_module

    from repro.obs import format_timeline, read_trace, request_timeline

    events = read_trace(args.run_trace)
    timeline = request_timeline(events, args.request)
    if args.json:
        print(json_module.dumps(timeline.to_dict(), indent=2))
    else:
        print(format_timeline(timeline, max_events=args.max_events))
    return 0 if timeline.found else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service import run_top

    iterations = 1 if args.once else args.iterations
    try:
        return run_top(
            args.url, interval_s=args.interval, iterations=iterations
        )
    except KeyboardInterrupt:
        return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = load_trace(args.trace)
    comparison = run_comparison(trace, cluster, args.algorithms)
    print(format_comparison_table(comparison))
    if "FlowTime" in comparison.names:
        print("\nad-hoc turnaround relative to FlowTime:")
        for name, ratio in turnaround_ratios(comparison).items():
            print(f"  {name:<14} {ratio:5.2f}x")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import run_report

    text = run_report(scale=args.scale, seed=args.seed)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    from contextlib import ExitStack

    from repro.service import SchedulerService, ServiceConfig, serve_http

    cluster = _cluster(args)
    failures, error_model = _fault_models(args)
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    scheduler_kwargs = {}
    if args.solve_budget is not None and args.scheduler.startswith("FlowTime"):
        scheduler_kwargs["planner"] = {"solve_budget_s": args.solve_budget}
    config = ServiceConfig(
        scheduler=args.scheduler,
        scheduler_kwargs=scheduler_kwargs,
        lp_backend=args.lp_backend,
        slot_seconds=args.slot_seconds,
        realtime=args.realtime,
        batch_window_s=args.batch_window,
        adhoc_queue_limit=args.queue_limit,
        admission=not args.no_admission,
        journal_path=args.journal,
        failures=failures,
        error_model=error_model,
        fault_seed=args.fault_seed,
        slo_deadline_objective=args.slo_objective,
        slo_decide_p99_s=args.slo_decide_p99,
        slo_window_s=args.slo_window,
        engine=args.engine,
    )
    if args.shards > 1:
        if args.async_http:
            # Shards inherit --engine through ServiceConfig, but the
            # router frontend is thread-based; keep the combination an
            # explicit error rather than a silent fallback.
            print(
                "error: --async supports a single service only "
                "(use --shards 1)",
                file=sys.stderr,
            )
            return 2
        return _serve_sharded(args, cluster, config)
    sink = None
    if args.trace_out:
        max_bytes = (
            int(args.trace_rotate_mb * 1024 * 1024)
            if args.trace_rotate_mb
            else None
        )
        sink = JsonlSink(
            args.trace_out,
            max_bytes=max_bytes,
            backups=args.trace_rotate_backups,
        )
    obs = Observability(
        sink=sink, level=verbosity_to_level(args.quiet, args.verbose)
    )
    with ExitStack() as stack:
        if args.chaos_fault_prob > 0.0 or args.chaos_slow_prob > 0.0:
            from repro.chaos import ChaosConfig, chaos_solver

            chaos = stack.enter_context(
                chaos_solver(
                    ChaosConfig(
                        solver_fault_prob=args.chaos_fault_prob,
                        solver_slow_prob=args.chaos_slow_prob,
                        solver_slow_s=args.chaos_slow_s,
                        seed=args.chaos_seed,
                    )
                )
            )
            print(
                f"chaos: fault_prob={args.chaos_fault_prob} "
                f"slow_prob={args.chaos_slow_prob} seed={args.chaos_seed}",
                flush=True,
            )
        service = SchedulerService(cluster, config, obs=obs).start()
        if args.async_http:
            from repro.service import serve_http_async

            server = serve_http_async(service, host=args.host, port=args.port)
        else:
            server = serve_http(service, host=args.host, port=args.port)
        frontend = "asyncio" if args.async_http else "threaded"
        print(
            f"serving {args.scheduler} on {server.url} "
            f"({frontend} frontend, {args.engine} engine)",
            flush=True,
        )
        print(
            "endpoints: POST /workflows  POST /jobs  GET /plan  GET /status  "
            "GET /metrics[?format=prometheus]  GET /slo  GET /healthz  "
            "GET /readyz",
            flush=True,
        )
        if args.journal:
            print(f"journal:   {args.journal}", flush=True)

        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        stop.wait()

        # Graceful drain: stop accepting requests, finish in-flight work,
        # flush the trace, then summarise the run.
        print("draining...", file=sys.stderr, flush=True)
        server.shutdown()
        result = service.drain()
        status = service.status()
        missed = sum(not w.met_deadline for w in result.workflows.values())
        print(f"drained after {result.n_slots} slots (finished={result.finished})")
        print(
            f"workflows: {status.accepted_workflows} accepted, "
            f"{status.rejected_workflows} rejected, {missed} missed deadline"
        )
        print(
            f"ad-hoc:    {status.accepted_adhoc} accepted, "
            f"{status.shed_adhoc} shed"
        )
        plan_failures = getattr(service.scheduler, "plan_failures", 0)
        if plan_failures:
            print(f"degraded:  {plan_failures} plan failures survived")
        if sink is not None:
            rotated = (
                f" ({sink.rotations} rotations)" if sink.rotations else ""
            )
            print(
                f"trace:     wrote {sink.n_events} events to "
                f"{args.trace_out}{rotated}"
            )
    obs.close()
    return 0


def _serve_sharded(args: argparse.Namespace, cluster, config) -> int:
    """``repro serve --shards N``: a router frontend over N local shards.

    Each shard owns a 1/N capacity slice, its own journal
    (``--journal PATH.shardN``), trace sink (``--trace-out
    PATH.shardN``) and metrics registry; the router multiplexes the
    single-service HTTP dialect over the fleet and the skyline
    rebalancer runs on its own cadence (docs/SHARDING.md).
    """
    import signal
    import threading
    from dataclasses import replace as dc_replace

    from repro.cluster import (
        DetectorConfig,
        FailureDetector,
        LocalShard,
        Rebalancer,
        RouterHTTPServer,
        ShardRouter,
        Supervisor,
        SupervisorConfig,
        slice_capacity,
    )
    from repro.verify import check_cross_shard_conservation

    try:
        slices = slice_capacity(cluster, args.shards)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    level = verbosity_to_level(args.quiet, args.verbose)
    shards = []
    for i, capacity_slice in enumerate(slices):
        shard_config = dc_replace(
            config,
            journal_path=f"{args.journal}.shard{i}" if args.journal else None,
        )

        def obs_factory(index: int = i):
            sink = (
                JsonlSink(f"{args.trace_out}.shard{index}")
                if args.trace_out
                else None
            )
            return Observability(sink=sink, level=level)

        shards.append(
            LocalShard(
                f"shard{i}",
                capacity_slice,
                shard_config,
                obs_factory=obs_factory,
            ).start()
        )
    router = ShardRouter(shards)
    rebalancer = Rebalancer(router)
    if args.rebalance_interval > 0:
        rebalancer.start(args.rebalance_interval)
    if args.reconcile_interval > 0:
        router.start_reconcile_loop(args.reconcile_interval)
    detector = FailureDetector(
        shards,
        DetectorConfig(
            probe_interval_s=args.probe_interval,
            dead_after_s=args.dead_after,
        ),
        obs=router.obs,
    ).start()
    router.attach_detector(detector)
    supervisor = None
    if args.failover:
        supervisor = Supervisor(
            router,
            detector,
            SupervisorConfig(failover_after_s=args.dead_after),
            rebalancer=rebalancer,
        ).start(args.probe_interval)
    server = RouterHTTPServer(
        router,
        rebalancer=rebalancer,
        supervisor=supervisor,
        host=args.host,
        port=args.port,
    )
    server_thread = threading.Thread(
        target=server.serve_forever, name="repro-router-http", daemon=True
    )
    server_thread.start()
    print(
        f"serving {args.scheduler} x{args.shards} shards behind router on "
        f"{server.url}",
        flush=True,
    )
    print(
        "endpoints: POST /workflows  POST /jobs  POST /rebalance  "
        "POST /reconcile  POST /failover  GET /status  GET /metrics  "
        "GET /slo  GET /shards  GET /healthz  GET /readyz",
        flush=True,
    )
    if supervisor is not None:
        print(
            f"failover:  supervisor on (probe {args.probe_interval}s, "
            f"dead after {args.dead_after}s)",
            flush=True,
        )
    if args.journal:
        print(
            f"journals:  {args.journal}.shard0..shard{args.shards - 1}",
            flush=True,
        )

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    stop.wait()

    print("draining...", file=sys.stderr, flush=True)
    server.shutdown()
    if supervisor is not None:
        supervisor.stop()
    detector.stop()
    rebalancer.stop()
    router.stop_reconcile_loop()
    router.reconcile()
    missed = 0
    for shard in shards:
        result = shard.drain()
        missed += sum(
            not w.met_deadline for w in result.workflows.values()
        )
    status = router.status()
    aggregate = status["aggregate"]
    owned = router.owned_by_shard()
    orphans = {
        name: list(entries)
        for name, entries in router.orphans_by_shard().items()
    }
    report = check_cross_shard_conservation(
        [wid for ids in owned.values() for wid in ids], owned, orphans
    )
    print(
        f"workflows: {aggregate['accepted_workflows']} accepted, "
        f"{aggregate['rejected_workflows']} rejected, {missed} missed "
        "deadline"
    )
    print(
        f"ad-hoc:    {aggregate['accepted_adhoc']} accepted, "
        f"{aggregate['shed_adhoc']} shed"
    )
    for name in sorted(owned):
        shard_status = status["shards"].get(name, {})
        print(
            f"  {name}: {shard_status.get('accepted_workflows', 0)} "
            f"workflows, {shard_status.get('accepted_adhoc', 0)} ad-hoc, "
            f"{len(owned[name])} owned at drain"
        )
    print(f"conservation: {report.summary()}")
    return 0 if report.ok else 1


_COMMANDS = {
    "generate-trace": _cmd_generate,
    "decompose": _cmd_decompose,
    "run": _cmd_run,
    "verify": _cmd_verify,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "top": _cmd_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=verbosity_to_level(args.quiet, args.verbose),
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    logging.getLogger("repro").setLevel(
        verbosity_to_level(args.quiet, args.verbose)
    )
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, KeyError) as error:
        # Bad paths, malformed trace files, workload validation failures:
        # report cleanly instead of tracebacking at the user.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
