"""Command-line interface.

Four subcommands cover the library's workflow end to end::

    python -m repro generate-trace --out trace.json --seed 15
    python -m repro decompose --trace trace.json --workflow wf0
    python -m repro run --trace trace.json --scheduler FlowTime --gantt
    python -m repro compare --trace trace.json

Cluster size is given with ``--cpu/--mem`` (every command defaults to the
64-core / 128-GB mixed-cluster setup the examples use).  Traces are the
replayable JSON files of :mod:`repro.workloads.traces`, so a comparison run
on another machine sees byte-identical workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.experiments import run_comparison, run_one
from repro.analysis.gantt import render_gantt, render_utilization
from repro.analysis.reporting import format_comparison_table, turnaround_ratios
from repro.core.decomposition import decompose_deadline
from repro.model.cluster import ClusterCapacity
from repro.schedulers.registry import SCHEDULER_NAMES
from repro.simulator.engine import SimulationConfig
from repro.workloads.traces import generate_trace, load_trace, save_trace


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cpu", type=int, default=64, help="cluster CPU cores")
    parser.add_argument("--mem", type=int, default=128, help="cluster memory (GB)")


def _cluster(args: argparse.Namespace) -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=args.cpu, mem=args.mem)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlowTime (ICDCS 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate-trace", help="generate a replayable workload trace (JSON)"
    )
    gen.add_argument("--out", required=True, help="output JSON path")
    gen.add_argument("--workflows", type=int, default=4)
    gen.add_argument("--jobs", type=int, default=12, help="jobs per workflow")
    gen.add_argument("--adhoc", type=int, default=30, help="number of ad-hoc jobs")
    gen.add_argument(
        "--looseness",
        type=float,
        nargs=2,
        default=(4.0, 8.0),
        metavar=("MIN", "MAX"),
        help="deadline as a multiple of the critical path",
    )
    gen.add_argument("--rate", type=float, default=0.7, help="ad-hoc arrivals/slot")
    gen.add_argument("--spread", type=int, default=50, help="workflow start spread")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--scientific",
        action="store_true",
        help="use Bharathi scientific shapes instead of layered random DAGs",
    )
    _add_cluster_args(gen)

    dec = sub.add_parser(
        "decompose", help="show the decomposed per-job deadline windows"
    )
    dec.add_argument("--trace", required=True)
    dec.add_argument("--workflow", help="workflow id (default: all)")
    dec.add_argument(
        "--chart", action="store_true", help="render windows as ASCII bars"
    )
    _add_cluster_args(dec)

    run = sub.add_parser("run", help="simulate one scheduler over a trace")
    run.add_argument("--trace", required=True)
    run.add_argument(
        "--scheduler", default="FlowTime", choices=sorted(SCHEDULER_NAMES)
    )
    run.add_argument("--slot-seconds", type=float, default=10.0)
    run.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    _add_cluster_args(run)

    report = sub.add_parser(
        "report", help="regenerate the core paper figures as one Markdown file"
    )
    report.add_argument("--out", help="write to this path (default: stdout)")
    report.add_argument("--scale", choices=["quick", "full"], default="quick")
    report.add_argument("--seed", type=int, default=15)

    cmp_parser = sub.add_parser(
        "compare", help="run several schedulers over the same trace"
    )
    cmp_parser.add_argument("--trace", required=True)
    cmp_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["FlowTime", "CORA", "EDF", "Fair", "FIFO"],
        choices=sorted(SCHEDULER_NAMES),
    )
    _add_cluster_args(cmp_parser)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = generate_trace(
        n_workflows=args.workflows,
        jobs_per_workflow=args.jobs,
        n_adhoc=args.adhoc,
        capacity=cluster,
        looseness=tuple(args.looseness),
        adhoc_rate_per_slot=args.rate,
        workflow_spread_slots=args.spread,
        scientific=args.scientific,
        seed=args.seed,
    )
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {trace.n_deadline_jobs} deadline jobs in "
        f"{len(trace.workflows)} workflows + {len(trace.adhoc_jobs)} ad-hoc jobs"
    )
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = load_trace(args.trace)
    workflows = [
        wf
        for wf in trace.workflows
        if args.workflow is None or wf.workflow_id == args.workflow
    ]
    if not workflows:
        print(f"error: no workflow {args.workflow!r} in {args.trace}", file=sys.stderr)
        return 2
    for workflow in workflows:
        result = decompose_deadline(workflow, cluster)
        method = "critical-path fallback" if result.used_fallback else "resource-demand"
        print(
            f"{workflow.workflow_id}: window [{workflow.start_slot}, "
            f"{workflow.deadline_slot}), {method}, "
            f"{len(result.node_sets)} levels"
        )
        if args.chart:
            from repro.analysis.windows_chart import render_windows

            print(render_windows(workflow, result.windows))
        else:
            for job_id in sorted(result.windows):
                window = result.windows[job_id]
                print(
                    f"  {job_id:<24} [{window.release_slot:>5}, "
                    f"{window.deadline_slot:>5})"
                )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = load_trace(args.trace)
    outcome = run_one(
        args.scheduler,
        trace,
        cluster,
        config=SimulationConfig(
            slot_seconds=args.slot_seconds, record_execution=args.gantt
        ),
    )
    result = outcome.result
    print(f"scheduler:            {args.scheduler}")
    print(f"finished:             {result.finished} ({result.n_slots} slots)")
    print(f"jobs missed:          {outcome.n_missed_jobs}")
    print(f"workflows missed:     {outcome.n_missed_workflows}")
    print(f"ad-hoc turnaround:    {outcome.adhoc_turnaround_s:.1f} s")
    print(render_utilization(result, cluster))
    if args.gantt:
        print()
        print(render_gantt(result))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    trace = load_trace(args.trace)
    comparison = run_comparison(trace, cluster, args.algorithms)
    print(format_comparison_table(comparison))
    if "FlowTime" in comparison.names:
        print("\nad-hoc turnaround relative to FlowTime:")
        for name, ratio in turnaround_ratios(comparison).items():
            print(f"  {name:<14} {ratio:5.2f}x")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(scale=args.scale, seed=args.seed)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


_COMMANDS = {
    "generate-trace": _cmd_generate,
    "decompose": _cmd_decompose,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, KeyError) as error:
        # Bad paths, malformed trace files, workload validation failures:
        # report cleanly instead of tracebacking at the user.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
