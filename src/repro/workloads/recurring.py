"""Recurring workflows.

"These deadline-aware workflows are typically recurring, running on a
daily, weekly or monthly basis" (Sec. I) — that recurrence is what makes
their structure and runtimes known, and what gives Morpheus prior runs to
infer deadlines from.  A :class:`RecurringWorkflow` is a skeleton plus a
period; :meth:`instance` stamps out the i-th occurrence with fresh job ids
and shifted start/deadline, and :func:`record_run` feeds an executed
instance back into a :class:`~repro.estimation.history.RunHistory` so the
history used by schedulers can come from *actual* prior simulations rather
than synthesised observations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.estimation.history import JobObservation, RunHistory, WorkflowRun
from repro.model.workflow import Workflow
from repro.simulator.result import SimulationResult


@dataclass(frozen=True)
class RecurringWorkflow:
    """A workflow template that recurs every ``period_slots``.

    Attributes:
        skeleton: the canonical occurrence, anchored at ``start_slot = 0``;
            its ``window_slots`` is the deadline window of every instance.
        period_slots: slots between consecutive instance start times.
        template_name: history key (defaults to the skeleton's name/id).
    """

    skeleton: Workflow
    period_slots: int
    template_name: str = ""

    def __post_init__(self) -> None:
        if self.period_slots < 1:
            raise ValueError("period_slots must be >= 1")
        if self.skeleton.start_slot != 0:
            raise ValueError("the skeleton must be anchored at start_slot 0")

    @property
    def name(self) -> str:
        return (
            self.template_name
            or self.skeleton.name
            or self.skeleton.workflow_id
        )

    def instance_id(self, index: int) -> str:
        return f"{self.skeleton.workflow_id}@{index}"

    def instance(self, index: int) -> Workflow:
        """The *index*-th occurrence (index 0 starts at slot 0)."""
        if index < 0:
            raise ValueError("index must be >= 0")
        new_wid = self.instance_id(index)
        start = index * self.period_slots
        id_map = {
            job.job_id: f"{new_wid}-{job.job_id}" for job in self.skeleton.jobs
        }
        jobs = [
            replace(job, job_id=id_map[job.job_id], workflow_id=new_wid)
            for job in self.skeleton.jobs
        ]
        edges = [(id_map[a], id_map[b]) for a, b in self.skeleton.edges]
        return Workflow.from_jobs(
            new_wid,
            jobs,
            edges,
            start,
            start + self.skeleton.window_slots,
            name=self.name,
        )

    def instances(self, count: int) -> list[Workflow]:
        return [self.instance(i) for i in range(count)]

    def skeleton_job_id(self, instance_index: int, job_id: str) -> str:
        """Map an instance job id back to the skeleton job id."""
        prefix = f"{self.instance_id(instance_index)}-"
        if not job_id.startswith(prefix):
            raise KeyError(job_id)
        return job_id[len(prefix):]


def record_run(
    history: RunHistory,
    recurring: RecurringWorkflow,
    instance_index: int,
    result: SimulationResult,
) -> WorkflowRun:
    """Extract one executed instance's observations into *history*.

    Start offsets come from readiness (when the job could first run),
    completion offsets from the completion slot — exactly what a resource
    manager's job-history server records.  Raises ValueError if the
    instance did not finish in *result*.
    """
    workflow = recurring.instance(instance_index)
    start = workflow.start_slot
    observations: dict[str, JobObservation] = {}
    makespan = 1
    for job in workflow.jobs:
        record = result.jobs.get(job.job_id)
        if record is None or record.completion_slot is None:
            raise ValueError(
                f"instance {instance_index} of {recurring.name}: job "
                f"{job.job_id} did not complete in the given result"
            )
        skeleton_id = recurring.skeleton_job_id(instance_index, job.job_id)
        begin = max((record.ready_slot or start) - start, 0)
        end = record.completion_slot + 1 - start
        end = max(end, begin + 1)
        observations[skeleton_id] = JobObservation(
            job_id=skeleton_id, start_offset=begin, completion_offset=end
        )
        makespan = max(makespan, end)
    run = WorkflowRun(observations=observations, makespan=makespan)
    history.add(recurring.name, run)
    return run
