"""Synthetic trace generation and (de)serialisation.

Stands in for the paper's production traces (see DESIGN.md substitutions):
recurring deadline-aware workflows with *loose* deadlines — the paper
observed a 24 h deadline on a ~2 h workflow, i.e. a looseness of ~12x; we
default to a configurable 3-8x — mixed with a Poisson stream of ad-hoc
jobs.  Traces serialise to JSON so experiments are replayable byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.critical_path import critical_path_length
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.dag_generators import layered_random_workflow
from repro.workloads.puma import random_puma_spec
from repro.workloads.scientific import SCIENTIFIC_SHAPES, make_scientific_workflow


@dataclass(frozen=True)
class SyntheticTrace:
    """One replayable workload: workflows plus an ad-hoc stream."""

    workflows: tuple[Workflow, ...]
    adhoc_jobs: tuple[Job, ...]

    @property
    def n_deadline_jobs(self) -> int:
        return sum(len(wf) for wf in self.workflows)


def generate_trace(
    *,
    n_workflows: int = 5,
    jobs_per_workflow: int = 18,
    n_adhoc: int = 40,
    capacity: ClusterCapacity,
    looseness: tuple[float, float] = (3.0, 8.0),
    adhoc_rate_per_slot: float = 0.25,
    workflow_spread_slots: int = 60,
    scientific: bool = False,
    seed: int = 0,
) -> SyntheticTrace:
    """The Fig. 4 workload shape: recurring workflows + an ad-hoc stream.

    The paper's deployment ran 5 workflows x 18 jobs = 90 deadline-aware
    jobs alongside ad-hoc jobs.  Deadlines are *loose* (drawn as
    ``looseness`` times the workflow's critical path), which is exactly the
    regime where EDF needlessly starves ad-hoc work (Sec. II-B).

    Args:
        n_workflows / jobs_per_workflow / n_adhoc: workload sizes.
        capacity: the target cluster (used for deadline looseness).
        looseness: (min, max) multiple of the critical path for deadlines.
        adhoc_rate_per_slot: Poisson arrival rate of ad-hoc jobs.
        workflow_spread_slots: workflow start slots are uniform in
            ``[0, workflow_spread_slots)``.
        scientific: draw DAGs from the Bharathi shapes instead of layered
            random DAGs.
        seed: RNG seed; same seed, same trace.
    """
    rng = np.random.default_rng(seed)
    workflows: list[Workflow] = []
    shapes = sorted(SCIENTIFIC_SHAPES)
    for w in range(n_workflows):
        wid = f"wf{w}"
        start = int(rng.integers(0, max(workflow_spread_slots, 1)))
        if scientific:
            shape = shapes[w % len(shapes)]
            width = max(jobs_per_workflow // 5, 1)
            skeleton = make_scientific_workflow(shape, wid, start, start + 10_000, width=width)
        else:
            n_levels = int(rng.integers(3, 7))
            n_levels = min(n_levels, jobs_per_workflow)
            skeleton = layered_random_workflow(
                wid,
                jobs_per_workflow,
                n_levels,
                start,
                start + 10_000,
                rng,
                edge_density=0.35,
                spec_of=lambda _i: random_puma_spec(rng, min_gb=10.0, max_gb=25.0),
            )
        cp = critical_path_length(skeleton, capacity, cluster_aware=True)
        factor = float(rng.uniform(*looseness))
        deadline = start + max(int(round(cp * factor)), cp + 1)
        workflows.append(
            Workflow.from_jobs(
                wid,
                skeleton.jobs,
                skeleton.edges,
                start,
                deadline,
                name=skeleton.name or wid,
            )
        )

    horizon = max(wf.deadline_slot for wf in workflows) if workflows else 200
    adhoc = adhoc_stream(
        n_adhoc,
        rate_per_slot=adhoc_rate_per_slot,
        horizon_slots=horizon,
        seed=seed + 1,
    )
    return SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=tuple(adhoc))


# -- JSON (de)serialisation ---------------------------------------------------------
#
# The per-entity converters are public: the trace files, the service's HTTP
# transport, and the HTTP client all speak this one wire format, so a trace
# entry can be replayed against a live server byte-for-byte.


def _spec_to_dict(spec: TaskSpec) -> dict:
    return {
        "count": spec.count,
        "duration_slots": spec.duration_slots,
        "demand": dict(spec.demand),
    }


def _spec_from_dict(data: dict) -> TaskSpec:
    return TaskSpec(
        count=data["count"],
        duration_slots=data["duration_slots"],
        demand=ResourceVector(data["demand"]),
    )


def _job_to_dict(job: Job) -> dict:
    out = {
        "job_id": job.job_id,
        "kind": job.kind.value,
        "arrival_slot": job.arrival_slot,
        "workflow_id": job.workflow_id,
        "name": job.name,
        "tasks": _spec_to_dict(job.tasks),
    }
    if job.true_tasks is not None:
        out["true_tasks"] = _spec_to_dict(job.true_tasks)
    return out


def _job_from_dict(data: dict) -> Job:
    return Job(
        job_id=data["job_id"],
        tasks=_spec_from_dict(data["tasks"]),
        kind=JobKind(data["kind"]),
        arrival_slot=data["arrival_slot"],
        workflow_id=data.get("workflow_id"),
        name=data.get("name", ""),
        true_tasks=(
            _spec_from_dict(data["true_tasks"]) if "true_tasks" in data else None
        ),
    )


def job_to_dict(job: Job) -> dict:
    """Serialise one job (either kind) to the trace wire format."""
    return _job_to_dict(job)


def job_from_dict(data: dict) -> Job:
    """Parse one job from the trace wire format."""
    return _job_from_dict(data)


def workflow_to_dict(wf: Workflow) -> dict:
    """Serialise one workflow (jobs + edges + window) to the wire format."""
    return {
        "workflow_id": wf.workflow_id,
        "name": wf.name,
        "start_slot": wf.start_slot,
        "deadline_slot": wf.deadline_slot,
        "jobs": [_job_to_dict(job) for job in wf.jobs],
        "edges": [list(edge) for edge in wf.edges],
    }


def workflow_from_dict(item: dict) -> Workflow:
    """Parse one workflow from the wire format (validates the DAG)."""
    return Workflow.from_jobs(
        item["workflow_id"],
        [_job_from_dict(j) for j in item["jobs"]],
        [tuple(edge) for edge in item["edges"]],
        item["start_slot"],
        item["deadline_slot"],
        name=item.get("name", ""),
    )


def save_trace(trace: SyntheticTrace, path: str | Path) -> None:
    """Write a trace as JSON (replayable across machines and versions)."""
    payload = {
        "workflows": [workflow_to_dict(wf) for wf in trace.workflows],
        "adhoc_jobs": [_job_to_dict(job) for job in trace.adhoc_jobs],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_trace(path: str | Path) -> SyntheticTrace:
    payload = json.loads(Path(path).read_text())
    workflows = tuple(
        workflow_from_dict(item) for item in payload["workflows"]
    )
    adhoc = tuple(_job_from_dict(j) for j in payload["adhoc_jobs"])
    return SyntheticTrace(workflows=workflows, adhoc_jobs=adhoc)
