"""DAG topology generators.

The structures the paper exercises: the Fig. 1/Fig. 3 motivating shapes
(chains and fork-joins), layered random DAGs for the Fig. 6 decomposition
scalability sweep (10-200 nodes, up to ~6000 edges), and generic random
DAGs for property-based tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow

#: Callable producing the TaskSpec of node ``i`` (or a constant spec).
SpecFactory = Callable[[int], TaskSpec]


def _default_spec(_index: int) -> TaskSpec:
    return TaskSpec(
        count=8, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4})
    )


def _jobs(
    workflow_id: str, n: int, spec_of: SpecFactory | TaskSpec | None
) -> list[Job]:
    if spec_of is None:
        factory: SpecFactory = _default_spec
    elif isinstance(spec_of, TaskSpec):
        factory = lambda _i, _s=spec_of: _s  # noqa: E731 - tiny closure
    else:
        factory = spec_of
    return [
        Job(
            job_id=f"{workflow_id}-j{i}",
            tasks=factory(i),
            kind=JobKind.DEADLINE,
            workflow_id=workflow_id,
        )
        for i in range(n)
    ]


def chain_workflow(
    workflow_id: str,
    length: int,
    start_slot: int,
    deadline_slot: int,
    spec_of: SpecFactory | TaskSpec | None = None,
) -> Workflow:
    """A linear chain j0 -> j1 -> ... (the Fig. 1 workflow is a 2-chain)."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    jobs = _jobs(workflow_id, length, spec_of)
    edges = [
        (jobs[i].job_id, jobs[i + 1].job_id) for i in range(length - 1)
    ]
    return Workflow.from_jobs(workflow_id, jobs, edges, start_slot, deadline_slot)


def fork_join_workflow(
    workflow_id: str,
    fan_out: int,
    start_slot: int,
    deadline_slot: int,
    spec_of: SpecFactory | TaskSpec | None = None,
) -> Workflow:
    """The Fig. 3 shape: 1 -> {2..n} -> n+1 with *fan_out* parallel middles."""
    if fan_out < 1:
        raise ValueError("fan_out must be >= 1")
    jobs = _jobs(workflow_id, fan_out + 2, spec_of)
    source, sink = jobs[0], jobs[-1]
    edges = []
    for middle in jobs[1:-1]:
        edges.append((source.job_id, middle.job_id))
        edges.append((middle.job_id, sink.job_id))
    if fan_out == 0:
        edges.append((source.job_id, sink.job_id))
    return Workflow.from_jobs(workflow_id, jobs, edges, start_slot, deadline_slot)


def diamond_workflow(
    workflow_id: str,
    start_slot: int,
    deadline_slot: int,
    spec_of: SpecFactory | TaskSpec | None = None,
) -> Workflow:
    """The 4-node diamond: j0 -> {j1, j2} -> j3."""
    return fork_join_workflow(workflow_id, 2, start_slot, deadline_slot, spec_of)


def random_dag_edges(
    n_nodes: int,
    target_edges: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Random acyclic edge set over nodes 0..n-1 (edges go low -> high).

    Used by the Fig. 6 scalability sweep, which ranges up to 200 nodes and
    ~6000 edges.  ``target_edges`` is capped at the DAG maximum n(n-1)/2.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    max_edges = n_nodes * (n_nodes - 1) // 2
    target = min(target_edges, max_edges)
    chosen: set[tuple[int, int]] = set()
    # Start with a random spanning chain so the DAG is connected-ish.
    order = rng.permutation(n_nodes)
    for a, b in zip(order[:-1], order[1:]):
        low, high = (int(a), int(b)) if a < b else (int(b), int(a))
        chosen.add((low, high))
        if len(chosen) >= target:
            break
    while len(chosen) < target:
        a = int(rng.integers(0, n_nodes - 1))
        b = int(rng.integers(a + 1, n_nodes))
        chosen.add((a, b))
    return sorted(chosen)


def layered_random_workflow(
    workflow_id: str,
    n_nodes: int,
    n_levels: int,
    start_slot: int,
    deadline_slot: int,
    rng: np.random.Generator,
    *,
    edge_density: float = 0.3,
    spec_of: SpecFactory | TaskSpec | None = None,
) -> Workflow:
    """A layered DAG: nodes spread over levels, edges only between
    consecutive levels (plus a guarantee every non-root has a parent).

    This is the scientific-workflow-like topology used for mixed-cluster
    experiments; the level widths are random but every level is non-empty.
    """
    if n_levels < 1 or n_nodes < n_levels:
        raise ValueError("need n_nodes >= n_levels >= 1")
    if not 0.0 <= edge_density <= 1.0:
        raise ValueError("edge_density must be in [0, 1]")
    jobs = _jobs(workflow_id, n_nodes, spec_of)
    # Assign each node a level; force one node per level first.
    levels: list[list[int]] = [[i] for i in range(n_levels)]
    for i in range(n_levels, n_nodes):
        levels[int(rng.integers(0, n_levels))].append(i)
    edges: list[tuple[str, str]] = []
    for upper, lower in zip(levels[:-1], levels[1:]):
        for child in lower:
            parents = [p for p in upper if rng.random() < edge_density]
            if not parents:
                parents = [upper[int(rng.integers(0, len(upper)))]]
            for parent in parents:
                edges.append((jobs[parent].job_id, jobs[child].job_id))
    return Workflow.from_jobs(workflow_id, jobs, edges, start_slot, deadline_slot)
