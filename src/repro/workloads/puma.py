"""PUMA benchmark job templates (Ahmad et al. [17]).

The paper's workflows are filled with PUMA MapReduce jobs — InvertedIndex,
Sequence-Count, WordCount (word-processing applications) and SelfJoin over
generated datasets — with inputs of at least 10 GB.  These templates encode
each benchmark's *shape*: tasks per input GB, per-task duration, and
per-task resource demand, calibrated to plausible Hadoop numbers (one map
task per 128 MB split; durations in 10 s slots).  Absolute numbers do not
matter for the reproduction — relative shape between jobs does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector


@dataclass(frozen=True)
class PumaTemplate:
    """Shape of one PUMA benchmark job.

    ``tasks_per_gb`` scales task count with input size; ``duration_slots``
    is the typical per-task runtime; ``cores``/``mem_gb`` the per-task
    container size (YARN-style: whole cores, whole GB).
    """

    name: str
    tasks_per_gb: float
    duration_slots: int
    cores: int
    mem_gb: int


PUMA_TEMPLATES: dict[str, PumaTemplate] = {
    # Word-processing benchmarks (CPU-leaning).
    "wordcount": PumaTemplate("wordcount", 0.8, 3, 2, 4),
    "inverted-index": PumaTemplate("inverted-index", 0.8, 4, 2, 6),
    "sequence-count": PumaTemplate("sequence-count", 0.8, 5, 2, 6),
    # Join benchmarks (memory/shuffle-leaning).
    "self-join": PumaTemplate("self-join", 0.6, 4, 2, 8),
    "adjacency-list": PumaTemplate("adjacency-list", 0.6, 5, 2, 8),
    "terasort": PumaTemplate("terasort", 1.0, 3, 1, 4),
    "grep": PumaTemplate("grep", 0.8, 2, 1, 2),
}


def puma_task_spec(template: str, input_gb: float) -> TaskSpec:
    """Task structure of one PUMA job over *input_gb* gigabytes of input."""
    try:
        tpl = PUMA_TEMPLATES[template]
    except KeyError:
        raise ValueError(
            f"unknown PUMA template {template!r}; available: {sorted(PUMA_TEMPLATES)}"
        ) from None
    if input_gb <= 0:
        raise ValueError(f"input_gb must be positive, got {input_gb}")
    count = max(int(round(tpl.tasks_per_gb * input_gb)), 1)
    return TaskSpec(
        count=count,
        duration_slots=tpl.duration_slots,
        demand=ResourceVector({CPU: tpl.cores, MEM: tpl.mem_gb}),
    )


def make_puma_job(
    job_id: str,
    template: str,
    input_gb: float,
    *,
    kind: JobKind = JobKind.DEADLINE,
    arrival_slot: int = 0,
    workflow_id: str | None = None,
) -> Job:
    """One PUMA-shaped job (deadline-class by default)."""
    return Job(
        job_id=job_id,
        tasks=puma_task_spec(template, input_gb),
        kind=kind,
        arrival_slot=arrival_slot,
        workflow_id=workflow_id,
        name=template,
    )


def make_mapreduce_jobs(
    job_id: str,
    template: str,
    input_gb: float,
    *,
    workflow_id: str,
    reduce_fraction: float = 0.35,
) -> tuple[list[Job], list[tuple[str, str]]]:
    """Split one PUMA job into chained map and reduce stage jobs.

    MapReduce stages have different shapes — many short map tasks, fewer
    longer reduce tasks — and the workflow DAG already expresses stage
    precedence, so a stage is simply a job node.  Returns the two jobs plus
    the map->reduce edge, ready to splice into a workflow.

    Args:
        job_id: base id; stages get ``-map`` / ``-reduce`` suffixes.
        template: PUMA template name.
        input_gb: input size (>= 10 GB per the paper's setup).
        workflow_id: owning workflow.
        reduce_fraction: reduce-side task count relative to the map side.
    """
    if not 0.0 < reduce_fraction <= 1.0:
        raise ValueError("reduce_fraction must be in (0, 1]")
    map_spec = puma_task_spec(template, input_gb)
    reduce_count = max(int(round(map_spec.count * reduce_fraction)), 1)
    reduce_spec = TaskSpec(
        count=reduce_count,
        duration_slots=map_spec.duration_slots + 1,  # shuffle + merge tail
        demand=map_spec.demand,
    )
    map_job = Job(
        job_id=f"{job_id}-map",
        tasks=map_spec,
        workflow_id=workflow_id,
        name=f"{template}-map",
    )
    reduce_job = Job(
        job_id=f"{job_id}-reduce",
        tasks=reduce_spec,
        workflow_id=workflow_id,
        name=f"{template}-reduce",
    )
    return [map_job, reduce_job], [(map_job.job_id, reduce_job.job_id)]


def random_puma_spec(
    rng: np.random.Generator,
    *,
    min_gb: float = 10.0,
    max_gb: float = 40.0,
) -> TaskSpec:
    """A random PUMA task spec (inputs >= 10 GB, matching Sec. VII-A)."""
    template = rng.choice(sorted(PUMA_TEMPLATES))
    input_gb = float(rng.uniform(min_gb, max_gb))
    return puma_task_spec(str(template), input_gb)
