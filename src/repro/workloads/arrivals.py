"""Ad-hoc job arrival processes.

Ad-hoc jobs "can be submitted to the system at any time" (Sec. II-A); the
standard model for independent submissions is a Poisson process.  A bursty
variant (Poisson bursts of geometric size) is provided for stress tests.
"""

from __future__ import annotations

import numpy as np

from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector


def poisson_arrival_slots(
    rate_per_slot: float,
    horizon_slots: int,
    rng: np.random.Generator,
) -> list[int]:
    """Arrival slots of a Poisson process with the given rate, within
    ``[0, horizon_slots)``, sorted ascending."""
    if rate_per_slot < 0:
        raise ValueError("rate_per_slot must be >= 0")
    if horizon_slots < 0:
        raise ValueError("horizon_slots must be >= 0")
    arrivals: list[int] = []
    time = 0.0
    while rate_per_slot > 0:
        time += rng.exponential(1.0 / rate_per_slot)
        if time >= horizon_slots:
            break
        arrivals.append(int(time))
    return arrivals


def bursty_arrival_slots(
    burst_rate_per_slot: float,
    mean_burst_size: float,
    horizon_slots: int,
    rng: np.random.Generator,
) -> list[int]:
    """Bursts arrive Poisson; each burst contributes a geometric number of
    simultaneous submissions."""
    if mean_burst_size < 1:
        raise ValueError("mean_burst_size must be >= 1")
    slots: list[int] = []
    for slot in poisson_arrival_slots(burst_rate_per_slot, horizon_slots, rng):
        size = 1 + rng.geometric(1.0 / mean_burst_size) - 1
        slots.extend([slot] * int(size))
    return slots


def _default_adhoc_spec(rng: np.random.Generator) -> TaskSpec:
    """Small, short, latency-sensitive jobs (interactive queries, dev runs)."""
    count = int(rng.integers(2, 12))
    duration = int(rng.integers(1, 4))
    cores = int(rng.choice([1, 1, 2]))
    mem = cores * int(rng.choice([2, 4]))
    return TaskSpec(
        count=count,
        duration_slots=duration,
        demand=ResourceVector({CPU: cores, MEM: mem}),
    )


def adhoc_stream(
    n_jobs: int | None = None,
    *,
    rate_per_slot: float = 0.2,
    horizon_slots: int = 200,
    seed: int = 0,
    spec_factory=None,
    prefix: str = "adhoc",
) -> list[Job]:
    """A stream of ad-hoc jobs with Poisson arrivals.

    Args:
        n_jobs: truncate to this many jobs (None = whatever the process
            yields over the horizon).
        rate_per_slot: Poisson arrival rate.
        horizon_slots: arrival window.
        seed: RNG seed.
        spec_factory: ``rng -> TaskSpec`` for job sizes (default: small
            latency-sensitive jobs).
        prefix: job-id prefix.
    """
    rng = np.random.default_rng(seed)
    factory = spec_factory or _default_adhoc_spec
    slots = poisson_arrival_slots(rate_per_slot, horizon_slots, rng)
    if n_jobs is not None:
        slots = slots[:n_jobs]
    return [
        Job(
            job_id=f"{prefix}-{i}",
            tasks=factory(rng),
            kind=JobKind.ADHOC,
            arrival_slot=slot,
        )
        for i, slot in enumerate(slots)
    ]
