"""Workload generation.

The paper evaluates with (a) scientific-workflow DAG shapes from the
Bharathi et al. characterisation [16] filled with PUMA MapReduce benchmark
jobs [17] (WordCount, InvertedIndex, Sequence-Count, SelfJoin) and (b)
trace-driven simulations from production traces with loose deadlines.  This
package generates all of it synthetically: DAG topologies, PUMA-shaped job
templates, ad-hoc arrival processes, and full serialisable traces.
"""

from repro.workloads.arrivals import adhoc_stream, poisson_arrival_slots
from repro.workloads.dag_generators import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    layered_random_workflow,
    random_dag_edges,
)
from repro.workloads.puma import (
    PUMA_TEMPLATES,
    make_mapreduce_jobs,
    make_puma_job,
    puma_task_spec,
)
from repro.workloads.recurring import RecurringWorkflow, record_run
from repro.workloads.scientific import (
    SCIENTIFIC_SHAPES,
    make_scientific_workflow,
)
from repro.workloads.traces import (
    SyntheticTrace,
    generate_trace,
    job_from_dict,
    job_to_dict,
    load_trace,
    save_trace,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = [
    "PUMA_TEMPLATES",
    "RecurringWorkflow",
    "SCIENTIFIC_SHAPES",
    "SyntheticTrace",
    "adhoc_stream",
    "chain_workflow",
    "diamond_workflow",
    "fork_join_workflow",
    "generate_trace",
    "job_from_dict",
    "job_to_dict",
    "layered_random_workflow",
    "load_trace",
    "make_mapreduce_jobs",
    "make_puma_job",
    "make_scientific_workflow",
    "poisson_arrival_slots",
    "puma_task_spec",
    "random_dag_edges",
    "record_run",
    "save_trace",
    "workflow_from_dict",
    "workflow_to_dict",
]
