"""Scientific-workflow DAG shapes (Bharathi et al. [16]).

The paper cites the classic characterisation of five scientific workflows —
Montage, CyberShake, Epigenomics, LIGO Inspiral, and SIPHT — whose DAG
*shapes* (fan-out patterns, pipeline depths, merge points) are what stress a
deadline decomposition.  These generators reproduce the shapes at a
parameterised ``width``; every node is a cluster *job* (the paper's model:
workflow nodes are jobs, not tasks), with per-stage task structures chosen
to echo each stage's character (wide/short vs narrow/long).
"""

from __future__ import annotations

from typing import Callable

from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow


def _spec(count: int, duration: int, cores: int = 2, mem: int = 4) -> TaskSpec:
    return TaskSpec(
        count=count,
        duration_slots=duration,
        demand=ResourceVector({CPU: cores, MEM: mem}),
    )


class _Builder:
    """Incrementally build a workflow: stages of jobs plus explicit edges."""

    def __init__(self, workflow_id: str, name: str):
        self.workflow_id = workflow_id
        self.name = name
        self.jobs: list[Job] = []
        self.edges: list[tuple[str, str]] = []

    def add(self, stage: str, index: int, spec: TaskSpec) -> str:
        job_id = f"{self.workflow_id}-{stage}{index}"
        self.jobs.append(
            Job(
                job_id=job_id,
                tasks=spec,
                kind=JobKind.DEADLINE,
                workflow_id=self.workflow_id,
                name=stage,
            )
        )
        return job_id

    def stage(self, stage: str, count: int, spec: TaskSpec) -> list[str]:
        return [self.add(stage, i, spec) for i in range(count)]

    def connect(self, parents: list[str], children: list[str]) -> None:
        """Fully connect two stages (a synchronisation barrier)."""
        for parent in parents:
            for child in children:
                self.edges.append((parent, child))

    def connect_pairwise(self, parents: list[str], children: list[str]) -> None:
        """One-to-one pipelines (requires equal lengths)."""
        if len(parents) != len(children):
            raise ValueError("pairwise connection needs equal stage widths")
        for parent, child in zip(parents, children):
            self.edges.append((parent, child))

    def build(self, start_slot: int, deadline_slot: int) -> Workflow:
        return Workflow.from_jobs(
            self.workflow_id,
            self.jobs,
            self.edges,
            start_slot,
            deadline_slot,
            name=self.name,
        )


def _montage(b: _Builder, width: int) -> None:
    project = b.stage("mProject", width, _spec(6, 2))
    diff = b.stage("mDiffFit", width, _spec(8, 1, cores=1, mem=2))
    b.connect(project, diff)
    concat = b.stage("mConcatFit", 1, _spec(2, 2, cores=2, mem=8))
    b.connect(diff, concat)
    bg_model = b.stage("mBgModel", 1, _spec(2, 3, cores=4, mem=8))
    b.connect(concat, bg_model)
    background = b.stage("mBackground", width, _spec(6, 1, cores=1, mem=2))
    b.connect(bg_model, background)
    imgtbl = b.stage("mImgtbl", 1, _spec(2, 1))
    b.connect(background, imgtbl)
    add = b.stage("mAdd", 1, _spec(4, 3, cores=2, mem=8))
    b.connect(imgtbl, add)
    shrink = b.stage("mShrink", 1, _spec(2, 1))
    b.connect(add, shrink)
    jpeg = b.stage("mJPEG", 1, _spec(1, 1, cores=1, mem=2))
    b.connect(shrink, jpeg)


def _cybershake(b: _Builder, width: int) -> None:
    extract = b.stage("ExtractSGT", width, _spec(4, 3, cores=2, mem=8))
    synth = b.stage("SeisSynth", width, _spec(8, 2, cores=2, mem=6))
    b.connect_pairwise(extract, synth)
    peak = b.stage("PeakValCalc", width, _spec(2, 1, cores=1, mem=2))
    b.connect_pairwise(synth, peak)
    zip_seis = b.stage("ZipSeis", 1, _spec(2, 2, cores=2, mem=4))
    b.connect(synth, zip_seis)
    zip_psa = b.stage("ZipPSA", 1, _spec(2, 2, cores=2, mem=4))
    b.connect(peak, zip_psa)


def _epigenomics(b: _Builder, width: int) -> None:
    split = b.stage("fastqSplit", 1, _spec(4, 2, cores=2, mem=4))
    filt = b.stage("filterContams", width, _spec(4, 2, cores=2, mem=4))
    b.connect(split, filt)
    sol = b.stage("sol2sanger", width, _spec(4, 1, cores=1, mem=2))
    b.connect_pairwise(filt, sol)
    bfq = b.stage("fastq2bfq", width, _spec(4, 1, cores=1, mem=2))
    b.connect_pairwise(sol, bfq)
    mapper = b.stage("map", width, _spec(8, 3, cores=2, mem=6))
    b.connect_pairwise(bfq, mapper)
    merge = b.stage("mapMerge", 1, _spec(4, 2, cores=2, mem=8))
    b.connect(mapper, merge)
    index = b.stage("maqIndex", 1, _spec(2, 2, cores=2, mem=8))
    b.connect(merge, index)
    pileup = b.stage("pileup", 1, _spec(2, 3, cores=2, mem=8))
    b.connect(index, pileup)


def _inspiral(b: _Builder, width: int) -> None:
    tmplt = b.stage("TmpltBank", width, _spec(4, 3, cores=2, mem=4))
    inspiral = b.stage("Inspiral", width, _spec(8, 4, cores=2, mem=6))
    b.connect_pairwise(tmplt, inspiral)
    groups = max(width // 3, 1)
    thinca = b.stage("Thinca", groups, _spec(2, 1, cores=1, mem=2))
    for i, job_id in enumerate(inspiral):
        b.edges.append((job_id, thinca[i % groups]))
    trig = b.stage("TrigBank", width, _spec(4, 2, cores=2, mem=4))
    for i, job_id in enumerate(trig):
        b.edges.append((thinca[i % groups], job_id))
    inspiral2 = b.stage("Inspiral2", width, _spec(6, 3, cores=2, mem=6))
    b.connect_pairwise(trig, inspiral2)
    thinca2 = b.stage("Thinca2", 1, _spec(2, 1, cores=1, mem=2))
    b.connect(inspiral2, thinca2)


def _sipht(b: _Builder, width: int) -> None:
    patser = b.stage("Patser", width, _spec(2, 1, cores=1, mem=2))
    concat = b.stage("PatserConcat", 1, _spec(2, 1, cores=1, mem=2))
    b.connect(patser, concat)
    blast = b.stage("Blast", max(width // 2, 1), _spec(6, 3, cores=2, mem=6))
    srna = b.stage("SRNA", 1, _spec(4, 2, cores=2, mem=6))
    b.connect(blast, srna)
    b.connect(concat, srna)
    ffn = b.stage("FFNParse", 1, _spec(2, 1, cores=1, mem=2))
    b.connect(srna, ffn)
    annotate = b.stage("SRNAAnnotate", 1, _spec(2, 2, cores=2, mem=4))
    b.connect(ffn, annotate)


SCIENTIFIC_SHAPES: dict[str, Callable[[_Builder, int], None]] = {
    "montage": _montage,
    "cybershake": _cybershake,
    "epigenomics": _epigenomics,
    "inspiral": _inspiral,
    "sipht": _sipht,
}


def make_scientific_workflow(
    shape: str,
    workflow_id: str,
    start_slot: int,
    deadline_slot: int,
    *,
    width: int = 4,
) -> Workflow:
    """One scientific workflow of the given *shape* and parallel *width*.

    >>> wf = make_scientific_workflow("montage", "m1", 0, 300, width=3)
    >>> len(wf) > 8
    True
    """
    try:
        fill = SCIENTIFIC_SHAPES[shape]
    except KeyError:
        raise ValueError(
            f"unknown shape {shape!r}; available: {sorted(SCIENTIFIC_SHAPES)}"
        ) from None
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = _Builder(workflow_id, shape)
    fill(builder, width)
    return builder.build(start_slot, deadline_slot)
