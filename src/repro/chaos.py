"""Chaos harness: seeded fault injection for robustness testing.

The fault-tolerance claims of this codebase (docs/ROBUSTNESS.md) are only
worth anything if they are *exercised*: a degraded-mode path nobody ever
enters is a degraded-mode path that does not work.  This module turns the
solver's fault-injection hook (:func:`repro.lp.solver.
install_fault_injector`) into a reproducible chaos experiment:

* **Seeded.**  Every roll comes from one ``random.Random(seed)`` — the
  same :class:`ChaosConfig` produces the same fault sequence, so a chaos
  failure found in CI replays locally from its config alone.
* **Bursty by design.**  The solver retries a failed attempt once on the
  alternate backend, so independent per-attempt faults at probability *p*
  only fail a *solve* at ~*p²* — chaos at 10% would almost never reach
  degraded mode.  ``fault_burst`` makes each triggered fault also fail
  the next ``fault_burst - 1`` attempts, modelling realistic correlated
  failures (a wedged solver library fails on whatever backend you try)
  and making the injected rate the *observed* solve-failure rate.
* **Slow faults too.**  ``solver_slow_prob`` injects sleeps instead of
  exceptions, which trips the wall-time budget path
  (``SolverFailure(reason="budget")``) rather than the error path.

Typical use::

    with chaos_solver(ChaosConfig(solver_fault_prob=0.1, seed=7)) as chaos:
        result = run_simulation(...)      # or drive a SchedulerService
    assert chaos.n_faults > 0             # the experiment actually bit

The kill/restart half of a chaos experiment lives on the service:
:meth:`repro.service.core.SchedulerService.kill` plus a journal
(``journal_path``) simulate SIGKILL + recovery; ``scripts/chaos_smoke.py``
composes both into the CI chaos gate.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.lp.problem import LinearProgram
from repro.lp.solver import install_fault_injector

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "InjectedSolverError",
    "chaos_solver",
]


class InjectedSolverError(RuntimeError):
    """A chaos-injected solver fault (distinguishable from real bugs)."""


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment's fault plan.

    Attributes:
        solver_fault_prob: per-solve-attempt probability of raising
            :class:`InjectedSolverError` (before the backend runs).
        solver_slow_prob: per-attempt probability of sleeping
            ``solver_slow_s`` before the backend runs (budget-path chaos).
        solver_slow_s: the injected delay in seconds.
        fault_burst: attempts failed per triggered fault (>= 1).  With the
            solver's one alternate-backend retry, a burst of 2 turns each
            triggered fault into one failed *solve*; 1 gives independent
            attempts (a retry usually saves the solve).
        seed: RNG seed; same config, same fault sequence.
    """

    solver_fault_prob: float = 0.0
    solver_slow_prob: float = 0.0
    solver_slow_s: float = 0.05
    fault_burst: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("solver_fault_prob", "solver_slow_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.solver_slow_s < 0:
            raise ValueError("solver_slow_s must be >= 0")
        if self.fault_burst < 1:
            raise ValueError("fault_burst must be >= 1")


class ChaosInjector:
    """The callable installed into the solver; counts what it did.

    Attributes:
        n_calls: solve attempts seen.
        n_faults: attempts failed with :class:`InjectedSolverError`.
        n_slow: attempts delayed by ``solver_slow_s``.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._burst_left = 0
        self.n_calls = 0
        self.n_faults = 0
        self.n_slow = 0

    def __call__(self, backend: str, problem: LinearProgram) -> None:
        self.n_calls += 1
        if self._burst_left > 0:
            # Correlated failure: the retry hits the same wedged state.
            self._burst_left -= 1
            self.n_faults += 1
            raise InjectedSolverError(
                f"injected solver fault (burst) on backend {backend!r}"
            )
        if self._rng.random() < self.config.solver_slow_prob:
            self.n_slow += 1
            time.sleep(self.config.solver_slow_s)
        if self._rng.random() < self.config.solver_fault_prob:
            self._burst_left = self.config.fault_burst - 1
            self.n_faults += 1
            raise InjectedSolverError(
                f"injected solver fault on backend {backend!r}"
            )


@contextmanager
def chaos_solver(config: ChaosConfig) -> Iterator[ChaosInjector]:
    """Install a seeded solver-fault injector for the duration of the block.

    The injector is process-global (it rides the module-level solver
    hook), so do not nest or run chaos experiments concurrently; the hook
    is removed on exit either way.
    """
    injector = ChaosInjector(config)
    install_fault_injector(injector)
    try:
        yield injector
    finally:
        install_fault_injector(None)
