"""Chaos harness: seeded fault injection for robustness testing.

The fault-tolerance claims of this codebase (docs/ROBUSTNESS.md) are only
worth anything if they are *exercised*: a degraded-mode path nobody ever
enters is a degraded-mode path that does not work.  This module turns the
solver's fault-injection hook (:func:`repro.lp.solver.
install_fault_injector`) into a reproducible chaos experiment:

* **Seeded.**  Every roll comes from one ``random.Random(seed)`` — the
  same :class:`ChaosConfig` produces the same fault sequence, so a chaos
  failure found in CI replays locally from its config alone.
* **Bursty by design.**  The solver retries a failed attempt once on the
  alternate backend, so independent per-attempt faults at probability *p*
  only fail a *solve* at ~*p²* — chaos at 10% would almost never reach
  degraded mode.  ``fault_burst`` makes each triggered fault also fail
  the next ``fault_burst - 1`` attempts, modelling realistic correlated
  failures (a wedged solver library fails on whatever backend you try)
  and making the injected rate the *observed* solve-failure rate.
* **Slow faults too.**  ``solver_slow_prob`` injects sleeps instead of
  exceptions, which trips the wall-time budget path
  (``SolverFailure(reason="budget")``) rather than the error path.

Typical use::

    with chaos_solver(ChaosConfig(solver_fault_prob=0.1, seed=7)) as chaos:
        result = run_simulation(...)      # or drive a SchedulerService
    assert chaos.n_faults > 0             # the experiment actually bit

The kill/restart half of a chaos experiment lives on the service:
:meth:`repro.service.core.SchedulerService.kill` plus a journal
(``journal_path``) simulate SIGKILL + recovery; ``scripts/chaos_smoke.py``
composes both into the CI chaos gate.

**Transport chaos** (:class:`ChaosTransport`) extends the same seeded
discipline to the cluster wire: wrap any shard handle (``LocalShard``,
``RemoteShard``, or anything duck-typed like them) and every remote call
rolls seeded drop / delay / duplicate faults, plus an explicit
:meth:`~ChaosTransport.partition` switch for network splits.  Drops and
partitions surface as :class:`OSError` — the same error class a real
dead socket raises — so the router, failure detector, and supervisor
exercise their production paths, not a test-only one.  The ``fault_log``
records every injected fault in order, making an experiment
byte-reproducible from its seed.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.lp.problem import LinearProgram
from repro.lp.solver import install_fault_injector

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "ChaosTransport",
    "ChaosTransportConfig",
    "InjectedSolverError",
    "chaos_solver",
]


class InjectedSolverError(RuntimeError):
    """A chaos-injected solver fault (distinguishable from real bugs)."""


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment's fault plan.

    Attributes:
        solver_fault_prob: per-solve-attempt probability of raising
            :class:`InjectedSolverError` (before the backend runs).
        solver_slow_prob: per-attempt probability of sleeping
            ``solver_slow_s`` before the backend runs (budget-path chaos).
        solver_slow_s: the injected delay in seconds.
        fault_burst: attempts failed per triggered fault (>= 1).  With the
            solver's one alternate-backend retry, a burst of 2 turns each
            triggered fault into one failed *solve*; 1 gives independent
            attempts (a retry usually saves the solve).
        seed: RNG seed; same config, same fault sequence.
    """

    solver_fault_prob: float = 0.0
    solver_slow_prob: float = 0.0
    solver_slow_s: float = 0.05
    fault_burst: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("solver_fault_prob", "solver_slow_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.solver_slow_s < 0:
            raise ValueError("solver_slow_s must be >= 0")
        if self.fault_burst < 1:
            raise ValueError("fault_burst must be >= 1")


class ChaosInjector:
    """The callable installed into the solver; counts what it did.

    Attributes:
        n_calls: solve attempts seen.
        n_faults: attempts failed with :class:`InjectedSolverError`.
        n_slow: attempts delayed by ``solver_slow_s``.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._burst_left = 0
        self.n_calls = 0
        self.n_faults = 0
        self.n_slow = 0

    def __call__(self, backend: str, problem: LinearProgram) -> None:
        self.n_calls += 1
        if self._burst_left > 0:
            # Correlated failure: the retry hits the same wedged state.
            self._burst_left -= 1
            self.n_faults += 1
            raise InjectedSolverError(
                f"injected solver fault (burst) on backend {backend!r}"
            )
        if self._rng.random() < self.config.solver_slow_prob:
            self.n_slow += 1
            time.sleep(self.config.solver_slow_s)
        if self._rng.random() < self.config.solver_fault_prob:
            self._burst_left = self.config.fault_burst - 1
            self.n_faults += 1
            raise InjectedSolverError(
                f"injected solver fault on backend {backend!r}"
            )


@dataclass(frozen=True)
class ChaosTransportConfig:
    """One transport-chaos experiment's fault plan.

    Attributes:
        drop_prob: per-call probability the request is "lost" — an
            :class:`OSError` is raised and the underlying shard is never
            invoked (the caller cannot tell a dropped request from a
            dropped response; idempotency keys are what make retrying
            safe either way).
        delay_prob: per-call probability of sleeping ``delay_s`` before
            delivery (trips client timeouts / detector suspicion).
        delay_s: the injected delay in seconds.
        duplicate_prob: per-call probability the request is delivered
            *twice* — the caller receives the second answer, modelling a
            retransmission whose original also landed.  Exactly-once
            admission then rests entirely on idempotency-key dedupe.
        seed: RNG seed; same config + same call sequence, same faults.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.01
    duplicate_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "delay_prob", "duplicate_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


class ChaosTransport:
    """Seeded faulty wire around a shard handle.

    Duck-types as the shard it wraps: every public method call first
    rolls the configured faults, then (unless dropped) delegates.
    Lifecycle methods (``start``/``kill``/``restart``/``drain``/``stop``)
    pass through unfaulted — chaos models the *network*, and you can
    always walk to the machine.  ``name`` and ``journal_path`` are
    plain attributes for the same reason.

    Faults are recorded in order in ``fault_log`` as
    ``(kind, method)`` tuples; with a fixed seed and call sequence the
    log (and hence the experiment) is exactly reproducible.
    """

    _PASSTHROUGH = frozenset({"start", "kill", "restart", "drain", "stop"})

    def __init__(self, shard, config: ChaosTransportConfig):
        self._shard = shard
        self.config = config
        self._rng = random.Random(config.seed)
        self._partitioned = False
        self.fault_log: list[tuple[str, str]] = []
        self.n_calls = 0

    # -- identity passthrough ----------------------------------------------------

    @property
    def name(self) -> str:
        return self._shard.name

    @property
    def journal_path(self):
        return getattr(self._shard, "journal_path", None)

    @property
    def capacity(self):
        return getattr(self._shard, "capacity", None)

    @property
    def wrapped(self):
        """The underlying shard handle (for tests / teardown)."""
        return self._shard

    # -- the partition switch ----------------------------------------------------

    def partition(self) -> None:
        """Cut the wire: every call fails until :meth:`heal`."""
        self._partitioned = True

    def heal(self) -> None:
        self._partitioned = False

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    # -- faulty delegation -------------------------------------------------------

    def __getattr__(self, attr):
        if attr.startswith("_"):
            raise AttributeError(attr)
        target = getattr(self._shard, attr)
        if not callable(target) or attr in self._PASSTHROUGH:
            return target

        def faulty(*args, **kwargs):
            return self._call(attr, target, args, kwargs)

        faulty.__name__ = attr
        return faulty

    def _call(self, method: str, target, args, kwargs):
        self.n_calls += 1
        if self._partitioned:
            self.fault_log.append(("partition", method))
            raise OSError(
                f"chaos: partitioned from shard {self.name!r} ({method})"
            )
        # Fixed roll order (drop, delay, duplicate) keeps the RNG stream —
        # and therefore the whole fault sequence — a pure function of the
        # seed and the call sequence.
        drop = self._rng.random() < self.config.drop_prob
        delay = self._rng.random() < self.config.delay_prob
        duplicate = self._rng.random() < self.config.duplicate_prob
        if drop:
            self.fault_log.append(("drop", method))
            raise OSError(
                f"chaos: dropped request to shard {self.name!r} ({method})"
            )
        if delay:
            self.fault_log.append(("delay", method))
            time.sleep(self.config.delay_s)
        if duplicate:
            self.fault_log.append(("duplicate", method))
            target(*args, **kwargs)  # the original delivery...
            return target(*args, **kwargs)  # ...and the retransmission
        return target(*args, **kwargs)


@contextmanager
def chaos_solver(config: ChaosConfig) -> Iterator[ChaosInjector]:
    """Install a seeded solver-fault injector for the duration of the block.

    The injector is process-global (it rides the module-level solver
    hook), so do not nest or run chaos experiments concurrently; the hook
    is removed on exit either way.
    """
    injector = ChaosInjector(config)
    install_fault_injector(injector)
    try:
        yield injector
    finally:
        install_fault_injector(None)
