"""Cross-shard conservation check for sharded deployments.

The single-service validator (:class:`~repro.verify.validator
.ScheduleValidator`) checks each shard's own schedule; this module
checks the property only the *fleet* can violate: every accepted
workflow lives on **exactly one** shard, no matter how many migrations,
crashes, and journal replays happened in between (docs/SHARDING.md).

Three invariants over a snapshot of (accepted ids, per-shard owned ids,
per-shard unsettled orphans):

* ``cross_shard.no_loss`` — every accepted workflow is owned by some
  shard or held as an orphan (an orphan is *in limbo*, not lost — the
  entity is journaled on its source);
* ``cross_shard.no_duplicates`` — no workflow is owned by two shards at
  once, and no *settled* state has a workflow both owned and orphaned;
* ``cross_shard.orphans_settled`` — after a reconcile pass, no orphans
  remain (checked only when orphan data is supplied);
* ``cross_shard.placement_consistent`` — the router's placement map
  points every owned workflow at a shard that actually owns it (checked
  only when a placement snapshot is supplied; a stale pin means routing
  and ownership have diverged — e.g. a failover that moved work without
  updating the map).

Run it after :meth:`~repro.cluster.router.ShardRouter.reconcile` — mid-
migration snapshots legitimately show a workflow owned by the
destination while still orphaned on the source.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.verify.validator import VerificationReport

__all__ = ["check_cross_shard_conservation"]


def check_cross_shard_conservation(
    accepted_ids: Iterable[str],
    owned_by_shard: Mapping[str, Iterable[str]],
    orphans_by_shard: Optional[Mapping[str, Iterable[str]]] = None,
    report: VerificationReport | None = None,
    *,
    placement: Optional[Mapping[str, str]] = None,
) -> VerificationReport:
    """Check that the fleet conserves every accepted workflow exactly once.

    Args:
        accepted_ids: workflow ids whose submission was answered
            *accepted* (as seen by clients — the router's ledger).
        owned_by_shard: shard name -> workflow ids that shard's engine
            currently owns (:meth:`ShardRouter.owned_by_shard`).
        orphans_by_shard: shard name -> workflow ids held as unsettled
            outbound migrations; enables the orphans-settled check.
        report: merge into an existing report instead of a fresh one.
        placement: workflow id -> shard name, the router's placement
            overrides (:attr:`ShardRouter.placement_overrides`); enables
            the placement-consistency check for workflows that appear in
            the owners map.
    """
    report = report if report is not None else VerificationReport()
    owners: dict[str, list[str]] = {}
    for shard, ids in owned_by_shard.items():
        for workflow_id in ids:
            owners.setdefault(workflow_id, []).append(shard)
    orphan_holders: dict[str, list[str]] = {}
    for shard, ids in (orphans_by_shard or {}).items():
        for workflow_id in ids:
            orphan_holders.setdefault(workflow_id, []).append(shard)

    accepted = sorted(set(accepted_ids))
    lost = [
        workflow_id
        for workflow_id in accepted
        if workflow_id not in owners and workflow_id not in orphan_holders
    ]
    for workflow_id in lost:
        report.check(
            "cross_shard.no_loss",
            False,
            "accepted workflow owned by no shard and orphaned nowhere",
            subject=workflow_id,
        )
    if not lost:
        report.check(
            "cross_shard.no_loss",
            True,
            f"all {len(accepted)} accepted workflows accounted for",
        )

    duplicated = {
        workflow_id: shards
        for workflow_id, shards in sorted(owners.items())
        if len(shards) > 1
    }
    for workflow_id, shards in duplicated.items():
        report.check(
            "cross_shard.no_duplicates",
            False,
            f"owned by {len(shards)} shards: {', '.join(sorted(shards))}",
            subject=workflow_id,
        )
    if not duplicated:
        report.check(
            "cross_shard.no_duplicates",
            True,
            "no workflow owned by more than one shard",
        )

    if orphans_by_shard is not None:
        unsettled = sorted(orphan_holders)
        for workflow_id in unsettled:
            report.check(
                "cross_shard.orphans_settled",
                False,
                f"unsettled migration orphan on "
                f"{', '.join(sorted(orphan_holders[workflow_id]))}",
                subject=workflow_id,
            )
        if not unsettled:
            report.check(
                "cross_shard.orphans_settled", True, "no unsettled orphans"
            )

    if placement is not None:
        # Only workflows the fleet currently owns can be judged: a pin
        # for a finished/never-owned workflow is harmless routing residue.
        stale = {
            workflow_id: pinned
            for workflow_id, pinned in sorted(placement.items())
            if workflow_id in owners and pinned not in owners[workflow_id]
        }
        for workflow_id, pinned in stale.items():
            report.check(
                "cross_shard.placement_consistent",
                False,
                f"placement pins {pinned!r} but owned by "
                f"{', '.join(sorted(owners[workflow_id]))}",
                subject=workflow_id,
            )
        if not stale:
            report.check(
                "cross_shard.placement_consistent",
                True,
                "every placement pin points at an owning shard",
            )
    return report
