"""Golden-trace regression corpus: pinned runs diffed event-for-event.

Each golden case is a small deterministic workload whose full FlowTime run
is pinned under ``tests/golden/<case>/`` as three files:

* ``workload.json`` — the wire-format workload (capacity + workflows +
  ad-hoc jobs), so the case is reproducible without its builder;
* ``run.jsonl`` — the run's normalised trace events (wall-clock ``ts``
  stripped; everything else — slots, units, ordering — byte-stable);
* ``summary.json`` — the reported metrics (timing-dependent
  ``decide_ms_*`` keys stripped).

:func:`check_corpus` re-runs every case and diffs events and summary
against the pinned files — any scheduler/engine behaviour drift fails CI
with the first diverging event.  :func:`write_corpus` regenerates the
files after an *intentional* behaviour change (``scripts/regen_golden.py``;
review the diff before committing).  Every golden run is also validated by
the :class:`~repro.verify.ScheduleValidator` at regeneration *and* check
time, so the corpus can never pin an invalid schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.workloads.traces import (
    SyntheticTrace,
    generate_trace,
    job_from_dict,
    job_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = [
    "GOLDEN_CASES",
    "GoldenCase",
    "check_corpus",
    "default_corpus_dir",
    "load_workload",
    "normalize_events",
    "run_golden",
    "write_corpus",
]

#: Summary keys whose values depend on wall-clock timing, not behaviour.
_TIMING_KEYS_PREFIX = "decide_ms"


@dataclass(frozen=True)
class GoldenCase:
    """One pinned workload: a name and a deterministic builder."""

    name: str
    build: Callable[[], tuple[SyntheticTrace, ClusterCapacity]]
    description: str = ""


def _diamond() -> tuple[SyntheticTrace, ClusterCapacity]:
    """The quickstart shape: one diamond ETL workflow plus two ad-hoc jobs."""
    capacity = ClusterCapacity(base=ResourceVector({"cpu": 40, "mem": 80}))
    spec = TaskSpec(
        count=6, duration_slots=3, demand=ResourceVector({"cpu": 2, "mem": 4})
    )
    jobs = [
        Job(job_id=f"etl-{name}", tasks=spec, workflow_id="etl", name=name)
        for name in ("extract", "clean", "enrich", "report")
    ]
    workflow = Workflow.from_jobs(
        "etl",
        jobs,
        [
            ("etl-extract", "etl-clean"),
            ("etl-extract", "etl-enrich"),
            ("etl-clean", "etl-report"),
            ("etl-enrich", "etl-report"),
        ],
        start_slot=0,
        deadline_slot=60,
        name="etl",
    )
    adhoc = tuple(
        Job(
            job_id=f"query-{i}",
            tasks=TaskSpec(
                count=4,
                duration_slots=2,
                demand=ResourceVector({"cpu": 2, "mem": 2}),
            ),
            kind=JobKind.ADHOC,
            arrival_slot=2 * i,
        )
        for i in range(2)
    )
    return SyntheticTrace(workflows=(workflow,), adhoc_jobs=adhoc), capacity


def _mixed() -> tuple[SyntheticTrace, ClusterCapacity]:
    """A small seeded mixed workload (layered DAGs + Poisson ad-hoc)."""
    capacity = ClusterCapacity(base=ResourceVector({"cpu": 32, "mem": 64}))
    trace = generate_trace(
        n_workflows=2,
        jobs_per_workflow=6,
        n_adhoc=8,
        capacity=capacity,
        looseness=(3.0, 6.0),
        adhoc_rate_per_slot=0.5,
        workflow_spread_slots=10,
        seed=42,
    )
    return trace, capacity


def _scientific() -> tuple[SyntheticTrace, ClusterCapacity]:
    """A seeded scientific-shape workload (Bharathi DAGs)."""
    capacity = ClusterCapacity(base=ResourceVector({"cpu": 24, "mem": 48}))
    trace = generate_trace(
        n_workflows=2,
        jobs_per_workflow=10,
        n_adhoc=5,
        capacity=capacity,
        looseness=(3.0, 5.0),
        adhoc_rate_per_slot=0.4,
        workflow_spread_slots=6,
        scientific=True,
        seed=7,
    )
    return trace, capacity


GOLDEN_CASES: dict[str, GoldenCase] = {
    case.name: case
    for case in (
        GoldenCase("diamond", _diamond, "quickstart diamond ETL + ad-hoc"),
        GoldenCase("mixed", _mixed, "seeded layered DAGs + Poisson stream"),
        GoldenCase("scientific", _scientific, "seeded Bharathi shapes"),
    )
}


def default_corpus_dir() -> Path:
    """``tests/golden`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def normalize_events(events: Iterable[dict]) -> list[dict]:
    """Events with wall-clock ``ts`` stripped (the only unstable field)."""
    out = []
    for event in events:
        event = dict(event)
        event.pop("ts", None)
        out.append(event)
    return out


def _normalize_summary(summary: dict) -> dict:
    return {
        key: value
        for key, value in summary.items()
        if not key.startswith(_TIMING_KEYS_PREFIX)
    }


def run_golden(
    case: GoldenCase, *, lp_backend: str | None = None
) -> tuple[list[dict], dict]:
    """Run one case; its normalised events and normalised summary.

    The run is validated by the independent verifier before anything is
    returned, so neither regeneration nor checking can pin (or silently
    accept) a schedule that violates the invariants.  ``lp_backend``
    selects the planner's LP backend — checking the pinned corpus under
    ``fastsolve`` asserts the combinatorial solver is byte-for-byte
    equivalent to the default on these workloads.
    """
    from repro.analysis.experiments import canonical_windows, run_one
    from repro.obs import Observability
    from repro.obs.trace import MemorySink
    from repro.simulator.engine import SimulationConfig
    from repro.simulator.metrics import summarize
    from repro.verify import ScheduleValidator

    trace, capacity = case.build()
    sink = MemorySink()
    outcome = run_one(
        "FlowTime",
        trace,
        capacity,
        config=SimulationConfig(record_execution=True, lp_backend=lp_backend),
        obs=Observability(sink=sink),
    )
    windows = canonical_windows(trace, capacity)
    jobs = [job for wf in trace.workflows for job in wf.jobs]
    jobs += list(trace.adhoc_jobs)
    validator = ScheduleValidator(
        capacity, workflows=trace.workflows, jobs=jobs, windows=windows
    )
    report = validator.validate(outcome.result)
    summary = summarize(outcome.result, windows)
    validator.check_reported(outcome.result, summary, report)
    report.raise_if_violations()
    return normalize_events(sink.events), _normalize_summary(summary)


def _workload_payload(case: GoldenCase) -> dict:
    trace, capacity = case.build()
    return {
        "case": case.name,
        "description": case.description,
        "capacity": dict(capacity.base),
        "workflows": [workflow_to_dict(wf) for wf in trace.workflows],
        "adhoc_jobs": [job_to_dict(job) for job in trace.adhoc_jobs],
    }


def load_workload(path: str | Path) -> tuple[SyntheticTrace, ClusterCapacity]:
    """Reload a pinned ``workload.json`` (builder-free reproduction)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    trace = SyntheticTrace(
        workflows=tuple(workflow_from_dict(item) for item in data["workflows"]),
        adhoc_jobs=tuple(job_from_dict(item) for item in data["adhoc_jobs"]),
    )
    return trace, ClusterCapacity(base=ResourceVector(data["capacity"]))


def write_corpus(
    root: str | Path | None = None, names: Optional[Iterable[str]] = None
) -> list[Path]:
    """(Re)generate the pinned files; the directories written."""
    root = Path(root) if root is not None else default_corpus_dir()
    written = []
    for name in names if names is not None else sorted(GOLDEN_CASES):
        case = GOLDEN_CASES[name]
        events, summary = run_golden(case)
        case_dir = root / name
        case_dir.mkdir(parents=True, exist_ok=True)
        (case_dir / "workload.json").write_text(
            json.dumps(_workload_payload(case), indent=2) + "\n",
            encoding="utf-8",
        )
        (case_dir / "run.jsonl").write_text(
            "".join(json.dumps(event) + "\n" for event in events),
            encoding="utf-8",
        )
        (case_dir / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(case_dir)
    return written


def check_corpus(
    root: str | Path | None = None,
    names: Optional[Iterable[str]] = None,
    *,
    lp_backend: str | None = None,
) -> list[str]:
    """Re-run every pinned case and diff; mismatch descriptions (empty=ok)."""
    root = Path(root) if root is not None else default_corpus_dir()
    problems = []
    for name in names if names is not None else sorted(GOLDEN_CASES):
        case = GOLDEN_CASES[name]
        case_dir = root / name
        if not case_dir.is_dir():
            problems.append(f"{name}: no pinned corpus at {case_dir}")
            continue
        try:
            events, summary = run_golden(case, lp_backend=lp_backend)
        except Exception as error:  # noqa: BLE001 - a crash is a regression
            problems.append(f"{name}: run raised {type(error).__name__}: {error}")
            continue
        pinned_events = [
            json.loads(line)
            for line in (case_dir / "run.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip()
        ]
        if events != pinned_events:
            problems.append(_describe_event_diff(name, pinned_events, events))
        pinned_summary = json.loads(
            (case_dir / "summary.json").read_text(encoding="utf-8")
        )
        if _normalize_summary(pinned_summary) != summary:
            problems.append(
                f"{name}: summary drift: pinned {pinned_summary} != {summary}"
            )
    return problems


def _describe_event_diff(name: str, pinned: list, fresh: list) -> str:
    for i, (a, b) in enumerate(zip(pinned, fresh)):
        if a != b:
            return f"{name}: event {i} drift: pinned {a} != {b}"
    return (
        f"{name}: event count drift: pinned {len(pinned)} != {len(fresh)}"
    )
