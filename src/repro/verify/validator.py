"""Independent schedule validation: re-derive correctness from raw outputs.

Every layer of the stack — LP, planner, scheduler, engine, service — has
its own tests, but each checks only what that layer promises.  This module
checks what the *system* promises, from the outputs alone:

* **capacity**: no slot consumes (or is granted) more than the cluster had;
* **precedence**: a child never becomes ready, runs, or completes before
  its parent completed;
* **conservation**: every completed job received exactly its true task
  slot-units of execution, in-window placements only;
* **window consistency**: decomposed per-job windows sit inside their
  workflow's [start, deadline) and respect the DAG order;
* **metric recomputation**: the reported deadline-miss / delta / turnaround
  numbers match what the raw records imply.

The checks deliberately share no code with the planner or the metrics
module: everything is recomputed here from the data containers
(:class:`~repro.simulator.result.SimulationResult`, the model types), so a
bug in the production path cannot hide itself in its own verifier.

Observability: every check bumps ``verify.checks``; every failed check
bumps ``verify.violations`` (counters on the ambient
:func:`~repro.obs.current_obs` handle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.model.job import Job, JobKind
from repro.model.workflow import Workflow
from repro.obs import current_obs

if TYPE_CHECKING:
    from repro.core.decomposition_types import JobWindow
    from repro.model.cluster import ClusterCapacity
    from repro.simulator.result import SimulationResult

__all__ = [
    "RuntimeVerifier",
    "ScheduleValidator",
    "VerificationError",
    "VerificationReport",
    "Violation",
]


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which check, where, and what went wrong."""

    check: str
    message: str
    slot: Optional[int] = None
    subject: Optional[str] = None

    def __str__(self) -> str:
        where = []
        if self.subject is not None:
            where.append(self.subject)
        if self.slot is not None:
            where.append(f"slot {self.slot}")
        location = f" [{', '.join(where)}]" if where else ""
        return f"{self.check}{location}: {self.message}"


@dataclass
class VerificationReport:
    """Outcome of a validation pass: checks performed and violations found."""

    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(
        self,
        check: str,
        passed: bool,
        message: str = "",
        *,
        slot: Optional[int] = None,
        subject: Optional[str] = None,
    ) -> bool:
        """Record one check; on failure also record a :class:`Violation`."""
        self.checks += 1
        obs = current_obs()
        obs.counter("verify.checks").inc()
        if not passed:
            self.violations.append(
                Violation(check=check, message=message, slot=slot, subject=subject)
            )
            obs.counter("verify.violations").inc()
        return passed

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        self.checks += other.checks
        self.violations.extend(other.violations)
        return self

    def summary(self) -> str:
        return f"verify: {self.checks} checks, {len(self.violations)} violations"

    def render(self, limit: int = 20) -> str:
        """Human-readable report: the summary plus up to *limit* violations."""
        lines = [self.summary()]
        for violation in self.violations[:limit]:
            lines.append(f"  - {violation}")
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if self.violations:
            raise VerificationError(self)


class VerificationError(ValueError):
    """A verified run violated an invariant; carries the full report."""

    def __init__(self, report: VerificationReport):
        super().__init__(report.render())
        self.report = report


# A slot-unit accounting tolerance: all quantities checked here are sums of
# integers stored as floats, so anything beyond rounding noise is real.
_EPS = 1e-6


def _job_index(
    workflows: Iterable[Workflow], jobs: Iterable[Job] | None
) -> dict[str, Job]:
    index: dict[str, Job] = {}
    for workflow in workflows:
        for job in workflow.jobs:
            index[job.job_id] = job
    for job in jobs or ():
        index.setdefault(job.job_id, job)
    return index


class ScheduleValidator:
    """Validates a :class:`SimulationResult` against the raw workload.

    Args:
        cluster: the capacity the run claimed to respect.
        workflows: the workload's workflows (enables precedence and
            workflow-completion checks; their jobs seed the job index).
        jobs: additional jobs (the ad-hoc stream) for the conservation and
            placement checks.
        windows: the decomposed per-job deadline windows used as metric
            ground truth (enables the window-consistency and deadline
            recomputation checks).  Windows are an *input* here — the
            validator never re-runs the decomposition.
        allow_setbacks: the run injected progress setbacks (failure model),
            so gross executed units may exceed a job's true size; demand
            conservation is then checked as a lower bound.
    """

    def __init__(
        self,
        cluster: "ClusterCapacity",
        *,
        workflows: Iterable[Workflow] = (),
        jobs: Iterable[Job] | None = None,
        windows: Mapping[str, "JobWindow"] | None = None,
        allow_setbacks: bool = False,
    ):
        self.cluster = cluster
        self.workflows = {wf.workflow_id: wf for wf in workflows}
        self.jobs = _job_index(self.workflows.values(), jobs)
        self.windows = dict(windows) if windows else {}
        self.allow_setbacks = allow_setbacks

    # -- entry points --------------------------------------------------------------

    def validate(self, result: "SimulationResult") -> VerificationReport:
        """Run every applicable check family over one result."""
        report = VerificationReport()
        self.check_capacity(result, report)
        self.check_records(result, report)
        self.check_precedence(result, report)
        self.check_conservation(result, report)
        self.check_windows(result, report)
        return report

    # -- capacity ------------------------------------------------------------------

    def check_capacity(
        self, result: "SimulationResult", report: VerificationReport
    ) -> None:
        """No slot consumed or was granted more than the cluster had."""
        for slot in range(min(result.n_slots, len(result.usage))):
            cap = self.cluster.at(slot)
            for r, name in enumerate(result.resources):
                limit = cap[name]
                used = float(result.usage[slot, r])
                report.check(
                    "capacity.used",
                    used <= limit + _EPS,
                    f"{name} usage {used:g} exceeds capacity {limit:g}",
                    slot=slot,
                    subject=name,
                )
                granted = float(result.granted[slot, r])
                report.check(
                    "capacity.granted",
                    granted <= limit + _EPS,
                    f"{name} grants {granted:g} exceed capacity {limit:g}",
                    slot=slot,
                    subject=name,
                )

    # -- record self-consistency ----------------------------------------------------

    def check_records(
        self, result: "SimulationResult", report: VerificationReport
    ) -> None:
        """Per-job lifecycle ordering and per-workflow completion bookkeeping."""
        for job_id, record in result.jobs.items():
            report.check(
                "record.arrival",
                record.arrival_slot >= 0,
                f"negative arrival slot {record.arrival_slot}",
                subject=job_id,
            )
            if record.ready_slot is not None:
                report.check(
                    "record.ready",
                    record.ready_slot >= record.arrival_slot,
                    f"ready at {record.ready_slot} before arrival "
                    f"{record.arrival_slot}",
                    subject=job_id,
                )
            if record.completion_slot is not None:
                report.check(
                    "record.completion",
                    record.ready_slot is not None
                    and record.ready_slot <= record.completion_slot
                    and record.completion_slot < result.n_slots,
                    f"completion at {record.completion_slot} outside "
                    f"[ready={record.ready_slot}, n_slots={result.n_slots})",
                    subject=job_id,
                )
            job = self.jobs.get(job_id)
            if job is not None:
                report.check(
                    "record.units",
                    record.true_units == job.execution_tasks.total_task_slots
                    and record.est_units == job.tasks.total_task_slots,
                    f"recorded units ({record.true_units} true, "
                    f"{record.est_units} est) do not match the workload "
                    f"({job.execution_tasks.total_task_slots} true, "
                    f"{job.tasks.total_task_slots} est)",
                    subject=job_id,
                )

        for wid, workflow in self.workflows.items():
            record = result.workflows.get(wid)
            if record is None:
                report.check(
                    "record.workflow",
                    False,
                    "workflow missing from the result",
                    subject=wid,
                )
                continue
            members = [
                result.jobs[j.job_id]
                for j in workflow.jobs
                if j.job_id in result.jobs
            ]
            report.check(
                "record.workflow",
                len(members) == len(workflow.jobs),
                "some workflow jobs are missing from the result",
                subject=wid,
            )
            completions = [m.completion_slot for m in members]
            if members and all(c is not None for c in completions):
                expected = max(completions)
                report.check(
                    "record.workflow_completion",
                    record.completion_slot == expected,
                    f"workflow completion {record.completion_slot} != last "
                    f"job completion {expected}",
                    subject=wid,
                )
            else:
                report.check(
                    "record.workflow_completion",
                    record.completion_slot is None,
                    f"workflow completed at {record.completion_slot} with "
                    "unfinished jobs",
                    subject=wid,
                )

    # -- precedence ------------------------------------------------------------------

    def check_precedence(
        self, result: "SimulationResult", report: VerificationReport
    ) -> None:
        """DAG order: a child starts strictly after its parent completes."""
        first_run = self._first_execution_slots(result)
        for workflow in self.workflows.values():
            for parent_id, child_id in workflow.edges:
                parent = result.jobs.get(parent_id)
                child = result.jobs.get(child_id)
                if parent is None or child is None:
                    continue  # flagged by check_records already
                subject = f"{parent_id} -> {child_id}"
                if parent.completion_slot is None:
                    report.check(
                        "precedence.blocked",
                        child.ready_slot is None
                        and child.completion_slot is None
                        and child_id not in first_run,
                        "child progressed although its parent never completed",
                        subject=subject,
                    )
                    continue
                barrier = parent.completion_slot + 1
                if child.ready_slot is not None:
                    report.check(
                        "precedence.ready",
                        child.ready_slot >= barrier,
                        f"child ready at {child.ready_slot}, parent completed "
                        f"at end of slot {parent.completion_slot}",
                        subject=subject,
                    )
                if child.completion_slot is not None:
                    report.check(
                        "precedence.completion",
                        child.completion_slot >= barrier,
                        f"child completed at {child.completion_slot}, before "
                        f"its parent ({parent.completion_slot})",
                        subject=subject,
                    )
                started = first_run.get(child_id)
                if started is not None:
                    report.check(
                        "precedence.execution",
                        started >= barrier,
                        f"child first ran at slot {started}, parent completed "
                        f"at end of slot {parent.completion_slot}",
                        subject=subject,
                    )

    @staticmethod
    def _first_execution_slots(result: "SimulationResult") -> dict[str, int]:
        first: dict[str, int] = {}
        for slot, row in enumerate(result.execution):
            for job_id in row:
                first.setdefault(job_id, slot)
        return first

    # -- demand conservation ----------------------------------------------------------

    def check_conservation(
        self, result: "SimulationResult", report: VerificationReport
    ) -> None:
        """Every task slot-unit delivered: totals, bounds, and usage rows.

        Requires ``record_execution=True`` runs (``result.execution``); with
        no execution rows only the record-level totals can be implied, so
        the check family is skipped silently.
        """
        if not result.execution:
            return
        totals: dict[str, float] = {}
        for slot, row in enumerate(result.execution):
            recomputed: dict[str, float] = {}
            for job_id, units in row.items():
                record = result.jobs.get(job_id)
                report.check(
                    "conservation.known",
                    record is not None,
                    "execution recorded for a job missing from the result",
                    slot=slot,
                    subject=job_id,
                )
                if record is None:
                    continue
                totals[job_id] = totals.get(job_id, 0.0) + units
                report.check(
                    "conservation.positive",
                    units > 0,
                    f"non-positive execution amount {units}",
                    slot=slot,
                    subject=job_id,
                )
                ready = record.ready_slot
                in_window = ready is not None and ready <= slot
                if record.completion_slot is not None:
                    in_window = in_window and slot <= record.completion_slot
                report.check(
                    "conservation.placement",
                    in_window,
                    f"executed outside its lifetime (ready={ready}, "
                    f"completed={record.completion_slot})",
                    slot=slot,
                    subject=job_id,
                )
                job = self.jobs.get(job_id)
                if job is not None:
                    spec = job.execution_tasks
                    report.check(
                        "conservation.parallelism",
                        units <= spec.count,
                        f"{units} units in one slot exceeds the job's "
                        f"{spec.count} tasks",
                        slot=slot,
                        subject=job_id,
                    )
                    for name, amount in spec.demand.items():
                        recomputed[name] = recomputed.get(name, 0.0) + amount * units
            know_all = all(job_id in self.jobs for job_id in row)
            if slot < len(result.usage) and know_all:
                for r, name in enumerate(result.resources):
                    expect = recomputed.get(name, 0.0)
                    have = float(result.usage[slot, r])
                    report.check(
                        "conservation.usage",
                        abs(expect - have) <= _EPS,
                        f"{name} usage row {have:g} != {expect:g} recomputed "
                        "from executed units",
                        slot=slot,
                        subject=name,
                    )

        for job_id, record in result.jobs.items():
            if record.arrival_slot >= result.n_slots:
                continue  # registered but never arrived within the run
            total = totals.get(job_id, 0.0)
            if record.completion_slot is not None:
                if self.allow_setbacks:
                    ok = total >= record.true_units - _EPS
                    detail = "at least"
                else:
                    ok = abs(total - record.true_units) <= _EPS
                    detail = "exactly"
                report.check(
                    "conservation.total",
                    ok,
                    f"completed job executed {total:g} units, expected "
                    f"{detail} {record.true_units}",
                    subject=job_id,
                )
            elif not self.allow_setbacks:
                report.check(
                    "conservation.total",
                    total < record.true_units - _EPS or record.true_units == 0,
                    f"unfinished job already executed {total:g} of "
                    f"{record.true_units} units",
                    subject=job_id,
                )

    # -- decomposed-deadline windows ---------------------------------------------------

    def check_windows(
        self, result: "SimulationResult", report: VerificationReport
    ) -> None:
        """Per-job windows nest inside the workflow deadline and DAG order."""
        if not self.windows:
            return
        for workflow in self.workflows.values():
            record = result.workflows.get(workflow.workflow_id)
            start = record.start_slot if record is not None else workflow.start_slot
            for job in workflow.jobs:
                window = self.windows.get(job.job_id)
                if window is None:
                    report.check(
                        "window.covered",
                        False,
                        "deadline job has no decomposed window",
                        subject=job.job_id,
                    )
                    continue
                report.check(
                    "window.bounds",
                    start <= window.release_slot
                    and window.deadline_slot <= workflow.deadline_slot,
                    f"window [{window.release_slot}, {window.deadline_slot}) "
                    f"outside the workflow's [{start}, "
                    f"{workflow.deadline_slot})",
                    subject=job.job_id,
                )
            for parent_id, child_id in workflow.edges:
                parent = self.windows.get(parent_id)
                child = self.windows.get(child_id)
                if parent is None or child is None:
                    continue
                report.check(
                    "window.order",
                    parent.release_slot <= child.release_slot
                    and parent.deadline_slot <= child.deadline_slot,
                    f"parent window [{parent.release_slot}, "
                    f"{parent.deadline_slot}) not before child's "
                    f"[{child.release_slot}, {child.deadline_slot})",
                    subject=f"{parent_id} -> {child_id}",
                )

    # -- metric recomputation ----------------------------------------------------------

    def recompute_metrics(self, result: "SimulationResult") -> dict:
        """Re-derive the headline metrics from the raw records alone.

        A job completing in slot ``s`` ends at boundary ``s + 1``; an
        unfinished job's end boundary is at least ``n_slots + 1``; a job is
        late iff its end boundary strictly exceeds its (exclusive) window
        deadline.  This mirrors the documented convention of the metrics
        module without importing it.
        """
        deltas: dict[str, float] = {}
        missed: list[str] = []
        for job_id, window in self.windows.items():
            record = result.jobs.get(job_id)
            if record is None:
                continue
            if record.completion_slot is not None:
                end = record.completion_slot + 1
            else:
                end = result.n_slots + 1
            delta = (end - window.deadline_slot) * result.slot_seconds
            deltas[job_id] = delta
            if delta > 0:
                missed.append(job_id)

        workflows_missed = []
        for wid, record in result.workflows.items():
            if (
                record.completion_slot is None
                or record.completion_slot >= record.deadline_slot
            ):
                workflows_missed.append(wid)

        turnarounds = []
        for record in result.jobs.values():
            if record.kind is not JobKind.ADHOC:
                continue
            if record.completion_slot is not None:
                turnarounds.append(record.completion_slot + 1 - record.arrival_slot)
            else:
                turnarounds.append(result.n_slots - record.arrival_slot)
        turnaround_s = (
            sum(turnarounds) / len(turnarounds) * result.slot_seconds
            if turnarounds
            else None
        )
        mean_delta = sum(deltas.values()) / len(deltas) if deltas else 0.0
        return {
            "n_deadline_jobs": float(len(self.windows)),
            "jobs_missed": float(len(missed)),
            "missed_job_ids": tuple(sorted(missed)),
            "workflows_missed": float(len(workflows_missed)),
            "missed_workflow_ids": tuple(sorted(workflows_missed)),
            "adhoc_turnaround_s": turnaround_s,
            "max_delta_s": max(deltas.values(), default=0.0),
            "mean_delta_s": mean_delta,
            "deltas_s": deltas,
        }

    def check_reported(
        self,
        result: "SimulationResult",
        reported: Mapping[str, object],
        report: VerificationReport | None = None,
    ) -> VerificationReport:
        """Compare a reported summary against the independent recomputation.

        *reported* is a summary mapping (the shape of
        ``repro.simulator.metrics.summarize``); only keys the recomputation
        covers are compared.
        """
        if report is None:
            report = VerificationReport()
        recomputed = self.recompute_metrics(result)
        for key in (
            "n_deadline_jobs",
            "jobs_missed",
            "workflows_missed",
            "adhoc_turnaround_s",
            "max_delta_s",
            "mean_delta_s",
        ):
            if key not in reported:
                continue
            want = recomputed[key]
            have = reported[key]
            if want is None or (isinstance(want, float) and math.isnan(want)):
                passed = have is None or (
                    isinstance(have, float) and math.isnan(have)
                )
            elif have is None or not isinstance(have, (int, float)):
                passed = False
            else:
                passed = abs(float(have) - float(want)) <= 1e-6
            report.check(
                "metrics.reported",
                passed,
                f"reported {key}={have!r} but the records imply {want!r}",
                subject=key,
            )
        return report


class RuntimeVerifier:
    """Per-slot assertion layer for a verified run (``run --verify``).

    The engine calls :meth:`check_slot` after executing each slot; the
    verifier recomputes the slot's resource footprint from the executed
    units and the jobs' true task specs and checks it against capacity,
    plus readiness/completion sanity for every job that ran.  Violations
    accumulate in :attr:`report`; the run raises at the end (the engine
    keeps stepping so the report covers the whole run, not just the first
    bad slot).
    """

    def __init__(self, cluster: "ClusterCapacity"):
        self.cluster = cluster
        self.report = VerificationReport()

    def check_slot(
        self,
        slot: int,
        executed: Mapping[str, int],
        completions: Iterable[str],
        runs: Mapping[str, object],
    ) -> None:
        report = self.report
        cap = self.cluster.at(slot)
        used: dict[str, float] = {}
        for job_id, units in executed.items():
            run = runs.get(job_id)
            report.check(
                "runtime.known",
                run is not None,
                "executed a job the engine does not track",
                slot=slot,
                subject=job_id,
            )
            if run is None:
                continue
            report.check(
                "runtime.ready",
                run.arrival_slot <= slot
                and run.ready_slot is not None
                and run.ready_slot <= slot,
                f"ran while not ready (arrival={run.arrival_slot}, "
                f"ready={run.ready_slot})",
                slot=slot,
                subject=job_id,
            )
            report.check(
                "runtime.not_done",
                run.completion_slot is None or run.completion_slot == slot,
                f"ran after completing at slot {run.completion_slot}",
                slot=slot,
                subject=job_id,
            )
            spec = run.job.execution_tasks
            report.check(
                "runtime.parallelism",
                0 < units <= spec.count,
                f"{units} units outside (0, {spec.count}]",
                slot=slot,
                subject=job_id,
            )
            for name, amount in spec.demand.items():
                used[name] = used.get(name, 0.0) + amount * units
        for name, amount in used.items():
            report.check(
                "runtime.capacity",
                amount <= cap[name] + _EPS,
                f"{name} usage {amount:g} exceeds capacity {cap[name]:g}",
                slot=slot,
                subject=name,
            )
        for job_id in completions:
            run = runs.get(job_id)
            if run is None:
                continue
            report.check(
                "runtime.completion",
                run.completion_slot == slot
                and run.executed_units >= run.true_total_units,
                f"completion with {run.executed_units} of "
                f"{run.true_total_units} units executed",
                slot=slot,
                subject=job_id,
            )
