"""Brute-force differential oracle for the production lexmin planner.

For *tiny* instances the flattest-schedule problem can be restated and
solved from scratch: a dense LP built directly with ``scipy.optimize.
linprog`` (no shared code with :mod:`repro.lp` or :mod:`repro.core`), and
for the very smallest instances an exhaustive enumeration of every
integral schedule.  The oracle asserts that the production path —
:class:`~repro.core.flowtime.FlowTimePlanner` with its sparse formulation,
lexmin rounds, warm starts, and quantisation — lands on the same minimax
utilisation theta and produces a feasible, demand-conserving plan.

Scope and limits (docs/VERIFICATION.md): the oracle compares the *round-1
minimax theta* (the quantity both formulations define identically) on
instances whose windows are individually feasible.  Two legitimate
production behaviours are detected and reported as ``skipped`` rather
than compared: jointly over-committed instances (the strict LP is
infeasible, the ladder relaxes windows, no common optimum exists) and
fractionally-feasible instances with no *integral* schedule (the LP
solves but quantisation must fail, so the ladder relaxes) — the latter
verified by exhaustive enumeration.  Relaxing when an integral schedule
*does* exist is a disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "OracleInstance",
    "OracleJob",
    "OracleOutcome",
    "check_instance",
    "enumerate_minimax",
    "generate_instance",
    "integral_feasible",
    "oracle_minimax",
    "run_oracle",
]

_THETA_TOL = 1e-5


@dataclass(frozen=True)
class OracleJob:
    """One deadline job of a tiny instance (window in absolute slots)."""

    job_id: str
    release: int
    deadline: int  # exclusive
    units: int
    max_parallel: int
    demand: dict  # resource name -> integer amount per task-slot

    @property
    def slot_cap(self) -> int:
        return min(self.max_parallel, self.units)


@dataclass(frozen=True)
class OracleInstance:
    seed: int
    capacity: dict  # resource name -> amount
    jobs: tuple[OracleJob, ...]

    @property
    def horizon(self) -> int:
        return max(job.deadline for job in self.jobs)


@dataclass(frozen=True)
class OracleOutcome:
    """The verdict on one seeded instance."""

    seed: int
    status: str  # "agree" | "disagree" | "skipped"
    oracle_theta: Optional[float] = None
    production_theta: Optional[float] = None
    detail: str = ""


def generate_instance(seed: int, *, single_resource: bool = False) -> OracleInstance:
    """A seeded tiny instance with individually feasible windows.

    Small enough that the dense oracle LP is trivial, varied enough to
    exercise window overlap, parallelism caps, and both resources.  Every
    job's units fit its own window (``units <= window * max_parallel``) so
    the strict formulation is infeasible only through *joint*
    over-commitment, which the oracle detects and skips.

    ``single_resource`` drops the mem dimension (capacity and demands), the
    regime where the coupled formulation has uniform per-variable weights
    and the fastsolve backend's interval-structure detection fires — the
    slice the ``solver-bench`` CI job runs the oracle on.  The same seed
    draws the same cpu-side instance either way.
    """
    rng = np.random.default_rng(seed)
    cpu = int(rng.integers(3, 9))
    capacity = {"cpu": cpu} if single_resource else {"cpu": cpu, "mem": 2 * cpu}
    n_jobs = int(rng.integers(1, 4))
    horizon = int(rng.integers(3, 9))
    jobs = []
    for j in range(n_jobs):
        release = int(rng.integers(0, horizon - 1))
        deadline = int(rng.integers(release + 1, horizon + 1))
        max_parallel = int(rng.integers(1, 4))
        demand_cpu = int(rng.integers(1, min(3, cpu) + 1))
        # Drawn even when dropped, so seeds line up across the two modes.
        demand_mem = int(rng.integers(1, 5))
        units = int(rng.integers(1, (deadline - release) * max_parallel + 1))
        demand = {"cpu": demand_cpu}
        if not single_resource:
            demand["mem"] = demand_mem
        jobs.append(
            OracleJob(
                job_id=f"o{seed}-j{j}",
                release=release,
                deadline=deadline,
                units=units,
                max_parallel=max_parallel,
                demand=demand,
            )
        )
    return OracleInstance(seed=seed, capacity=capacity, jobs=tuple(jobs))


def oracle_minimax(instance: OracleInstance) -> Optional[float]:
    """The optimal minimax utilisation theta, from a dense LP built here.

    Variables: one allocation ``x[j, t]`` per job and window slot, plus
    theta.  Minimise theta subject to demand conservation (every job's
    units placed), per-slot-and-resource load ``<= theta * capacity`` and
    ``<= capacity`` (hard), and per-variable bounds
    ``0 <= x <= min(max_parallel, units)``.  Returns None when infeasible
    (the workload jointly over-commits the cluster within its windows).
    """
    from scipy.optimize import linprog

    resources = sorted(instance.capacity)
    horizon = instance.horizon
    var_index: dict[tuple[int, int], int] = {}
    bounds = []
    for j, job in enumerate(instance.jobs):
        for t in range(job.release, job.deadline):
            var_index[(j, t)] = len(var_index)
            bounds.append((0.0, float(job.slot_cap)))
    n_alloc = len(var_index)
    theta = n_alloc  # theta is the last variable
    bounds.append((0.0, None))

    cost = np.zeros(n_alloc + 1)
    cost[theta] = 1.0

    a_eq = np.zeros((len(instance.jobs), n_alloc + 1))
    b_eq = np.zeros(len(instance.jobs))
    for j, job in enumerate(instance.jobs):
        for t in range(job.release, job.deadline):
            a_eq[j, var_index[(j, t)]] = 1.0
        b_eq[j] = float(job.units)

    rows = []
    rhs = []
    for t in range(horizon):
        for name in resources:
            load = np.zeros(n_alloc + 1)
            any_load = False
            for j, job in enumerate(instance.jobs):
                if job.release <= t < job.deadline and job.demand.get(name, 0):
                    load[var_index[(j, t)]] = float(job.demand[name])
                    any_load = True
            if not any_load:
                continue
            soft = load.copy()
            soft[theta] = -float(instance.capacity[name])
            rows.append(soft)
            rhs.append(0.0)
            rows.append(load)
            rhs.append(float(instance.capacity[name]))
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.asarray(rhs) if rows else None

    solution = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not solution.success:
        return None
    return float(solution.x[theta])


def _allocations(job: OracleJob) -> list[tuple[int, ...]]:
    """Every integral split of a job's units over its window slots."""
    window = range(job.release, job.deadline)
    out: list[tuple[int, ...]] = []

    def fill(slots: list[int], remaining: int, position: int) -> None:
        if position == len(window) - 1:
            if remaining <= job.slot_cap:
                out.append(tuple(slots + [remaining]))
            return
        for amount in range(min(remaining, job.slot_cap) + 1):
            fill(slots + [amount], remaining - amount, position + 1)

    fill([], job.units, 0)
    return out


def _per_job_allocations(
    instance: OracleInstance, max_schedules: int
) -> Optional[list[list[tuple[int, ...]]]]:
    per_job = [_allocations(job) for job in instance.jobs]
    total = 1
    for options in per_job:
        if not options:
            return None
        total *= len(options)
        if total > max_schedules:
            return None
    return per_job


def _search_schedules(
    instance: OracleInstance,
    per_job: list[list[tuple[int, ...]]],
    *,
    first_only: bool,
) -> Optional[float]:
    """Depth-first search over integral schedules under the hard capacity.

    Returns the best (or, with *first_only*, any) achievable peak
    utilisation, or None when no integral schedule respects capacity.
    """
    resources = sorted(instance.capacity)
    horizon = instance.horizon
    best: Optional[float] = None

    def recurse(j: int, load: np.ndarray) -> bool:
        nonlocal best
        if j == len(instance.jobs):
            peak = 0.0
            for t in range(horizon):
                for r, name in enumerate(resources):
                    peak = max(peak, load[t, r] / instance.capacity[name])
            if best is None or peak < best:
                best = peak
            return first_only
        job = instance.jobs[j]
        for option in per_job[j]:
            new = load.copy()
            feasible = True
            for offset, amount in enumerate(option):
                if amount == 0:
                    continue
                t = job.release + offset
                for r, name in enumerate(resources):
                    new[t, r] += amount * job.demand.get(name, 0)
                    if new[t, r] > instance.capacity[name]:
                        feasible = False
                        break
                if not feasible:
                    break
            if feasible and recurse(j + 1, new):
                return True
        return False

    recurse(0, np.zeros((horizon, len(resources))))
    return best


def enumerate_minimax(
    instance: OracleInstance, max_schedules: int = 200_000
) -> Optional[float]:
    """The optimal *integral* minimax theta by exhaustive enumeration.

    Enumerates every integral placement of every job inside its window
    (respecting per-slot parallelism caps and the hard capacity limit) and
    returns the smallest achievable peak utilisation.  Returns None when
    no integral schedule exists or the search space exceeds
    *max_schedules* (callers should pre-filter to super-tiny instances).
    """
    per_job = _per_job_allocations(instance, max_schedules)
    if per_job is None:
        return None
    return _search_schedules(instance, per_job, first_only=False)


def integral_feasible(
    instance: OracleInstance, max_schedules: int = 500_000
) -> Optional[bool]:
    """Whether *any* integral schedule fits the windows and hard capacity.

    Early-exits on the first feasible schedule.  Returns None when the
    search space exceeds *max_schedules* (undecided).
    """
    per_job = _per_job_allocations(instance, max_schedules)
    if per_job is None and any(not _allocations(j) for j in instance.jobs):
        return False
    if per_job is None:
        return None
    return _search_schedules(instance, per_job, first_only=True) is not None


def _production_plan(instance: OracleInstance, *, backend: str = "highs"):
    """Plan the instance through the production FlowTime path."""
    from repro.core.flowtime import FlowTimePlanner, JobDemand, PlannerConfig
    from repro.core.replan import PlanRequest
    from repro.model.cluster import ClusterCapacity
    from repro.model.resources import ResourceVector

    demands = tuple(
        JobDemand(
            job_id=job.job_id,
            release_slot=job.release,
            deadline_slot=job.deadline,
            units=job.units,
            unit_demand=ResourceVector(job.demand),
            max_parallel=job.max_parallel,
        )
        for job in instance.jobs
    )
    capacity = ClusterCapacity(base=ResourceVector(instance.capacity))
    planner = FlowTimePlanner(
        # slack_slots=0 keeps the planner's windows identical to the
        # oracle's; cache/warm-start off so every instance is a cold solve.
        PlannerConfig(
            slack_slots=0, plan_cache=False, warm_start=False, backend=backend
        )
    )
    request = PlanRequest(now_slot=0, demands=demands, capacity=capacity)
    return planner.plan(request)


def _validate_plan(instance: OracleInstance, plan) -> list[str]:
    """Feasibility of the quantised production plan, checked from scratch."""
    problems = []
    resources = sorted(instance.capacity)
    horizon = max(instance.horizon, plan.origin_slot + plan.horizon)
    load = np.zeros((horizon, len(resources)))
    for job in instance.jobs:
        grant = plan.grants.get(job.job_id)
        total = int(grant.sum()) if grant is not None else 0
        if total != job.units:
            problems.append(
                f"{job.job_id}: plan places {total} of {job.units} units"
            )
        if grant is None:
            continue
        for offset, amount in enumerate(grant):
            if amount == 0:
                continue
            t = plan.origin_slot + offset
            if amount > job.slot_cap:
                problems.append(
                    f"{job.job_id}: {int(amount)} units at slot {t} exceeds "
                    f"its parallelism cap {job.slot_cap}"
                )
            if not job.release <= t < job.deadline:
                problems.append(
                    f"{job.job_id}: placed at slot {t} outside its window "
                    f"[{job.release}, {job.deadline})"
                )
                continue
            for r, name in enumerate(resources):
                load[t, r] += amount * job.demand.get(name, 0)
    for t in range(horizon):
        for r, name in enumerate(resources):
            if load[t, r] > instance.capacity[name] + 1e-9:
                problems.append(
                    f"slot {t}: {name} load {load[t, r]:g} exceeds capacity "
                    f"{instance.capacity[name]}"
                )
    return problems


def check_instance(
    seed: int, *, backend: str = "highs", single_resource: bool = False
) -> OracleOutcome:
    """Generate, solve both ways, and compare one seeded instance.

    ``backend`` selects the production planner's LP backend; the oracle LP
    always runs dense ``linprog`` so the comparison stays independent.
    """
    instance = generate_instance(seed, single_resource=single_resource)
    theta_oracle = oracle_minimax(instance)
    if theta_oracle is None:
        # Jointly over-committed: the production ladder relaxes windows
        # here and no shared optimum is defined.
        return OracleOutcome(seed=seed, status="skipped", detail="infeasible")
    plan = _production_plan(instance, backend=backend)
    theta_prod = float(plan.minimax)
    if getattr(plan, "degraded", False):
        return OracleOutcome(
            seed=seed,
            status="disagree",
            oracle_theta=theta_oracle,
            production_theta=theta_prod,
            detail="production degraded on an oracle-feasible instance",
        )
    if not np.isfinite(theta_prod):
        return OracleOutcome(
            seed=seed,
            status="disagree",
            oracle_theta=theta_oracle,
            production_theta=theta_prod,
            detail="production plan carries no minimax theta",
        )
    problems = _validate_plan(instance, plan)
    if problems:
        # The plan breaks the strict windows: production fell off the
        # first ladder rung.  That is legitimate iff quantisation *had*
        # to fail — no integral schedule exists although the LP solved.
        feasible = integral_feasible(instance)
        if feasible is False:
            return OracleOutcome(
                seed=seed,
                status="skipped",
                oracle_theta=theta_oracle,
                production_theta=theta_prod,
                detail="integral-infeasible; production relaxed windows",
            )
        if feasible is None:
            return OracleOutcome(
                seed=seed,
                status="skipped",
                oracle_theta=theta_oracle,
                production_theta=theta_prod,
                detail="production relaxed windows; existence check too large",
            )
        return OracleOutcome(
            seed=seed,
            status="disagree",
            oracle_theta=theta_oracle,
            production_theta=theta_prod,
            detail="relaxed although an integral schedule exists: "
            + "; ".join(problems),
        )
    if abs(theta_prod - theta_oracle) > _THETA_TOL:
        return OracleOutcome(
            seed=seed,
            status="disagree",
            oracle_theta=theta_oracle,
            production_theta=theta_prod,
            detail=f"theta {theta_prod:.6f} != oracle {theta_oracle:.6f}",
        )
    return OracleOutcome(
        seed=seed,
        status="agree",
        oracle_theta=theta_oracle,
        production_theta=theta_prod,
    )


def run_oracle(
    seeds,
    *,
    min_agreements: int | None = None,
    backend: str = "highs",
    single_resource: bool = False,
) -> list[OracleOutcome]:
    """Check a sequence of seeds; optionally stop once enough agree."""
    outcomes = []
    agreements = 0
    for seed in seeds:
        outcome = check_instance(
            int(seed), backend=backend, single_resource=single_resource
        )
        outcomes.append(outcome)
        if outcome.status == "agree":
            agreements += 1
            if min_agreements is not None and agreements >= min_agreements:
                break
    return outcomes
