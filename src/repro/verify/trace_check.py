"""Trace-only verification: invariants recomputed from a JSONL event stream.

The structured trace (docs/OBSERVABILITY.md) is the run's raw evidence:
arrivals, readiness transitions, per-slot task placements, setbacks,
completions.  This module re-derives correctness and the headline metrics
from those events alone — it never looks at a ``SimulationResult`` — which
is what ``repro verify <run.jsonl>`` runs.

Without the workload, only trace-internal lifecycle invariants can be
checked (ordering, unique completions, placement windows).  Given the
workload trace (and a cluster), the full set applies: capacity per slot,
precedence along the DAG edges, and demand conservation against every
job's true task structure.

Event-slot convention: a ``job_completed`` / ``workflow_completed`` event
carries ``slot = completion_slot + 1`` (it is delivered at the start of
the next slot), so an event's slot *is* the job's exclusive end boundary —
deadline deltas and turnaround fall straight out of the event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from repro.verify.validator import _EPS, VerificationReport

if TYPE_CHECKING:
    from repro.core.decomposition_types import JobWindow
    from repro.model.cluster import ClusterCapacity
    from repro.workloads.traces import SyntheticTrace

__all__ = ["TraceIndex", "recompute_trace_metrics", "validate_trace"]


@dataclass
class TraceIndex:
    """Per-entity view of a flat event stream (one pass, order preserved)."""

    placements: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    ready: dict[str, int] = field(default_factory=dict)
    arrived: dict[str, int] = field(default_factory=dict)
    completed: dict[str, list[int]] = field(default_factory=dict)
    setback_units: dict[str, int] = field(default_factory=dict)
    workflow_arrived: dict[str, int] = field(default_factory=dict)
    workflow_completed: dict[str, list[int]] = field(default_factory=dict)
    workflow_of: dict[str, str] = field(default_factory=dict)
    run_start: list[dict] = field(default_factory=list)
    run_end: list[dict] = field(default_factory=list)
    seqs: list[int] = field(default_factory=list)

    @classmethod
    def build(cls, events: Iterable[Mapping]) -> "TraceIndex":
        index = cls()
        for event in events:
            kind = event.get("type")
            slot = event.get("slot")
            job_id = event.get("job_id")
            workflow_id = event.get("workflow_id")
            if "seq" in event:
                index.seqs.append(int(event["seq"]))
            if job_id is not None and workflow_id is not None:
                index.workflow_of.setdefault(job_id, workflow_id)
            if kind == "task_placement":
                index.placements.setdefault(job_id, []).append(
                    (int(slot), int(event.get("units", 0)))
                )
            elif kind == "job_ready":
                index.ready.setdefault(job_id, int(slot))
            elif kind == "job_arrived":
                index.arrived.setdefault(job_id, int(slot))
            elif kind == "job_completed":
                index.completed.setdefault(job_id, []).append(int(slot))
            elif kind == "job_setback":
                index.setback_units[job_id] = index.setback_units.get(
                    job_id, 0
                ) + int(event.get("lost_units", 0))
            elif kind == "workflow_arrived":
                index.workflow_arrived.setdefault(workflow_id, int(slot))
            elif kind == "workflow_completed":
                index.workflow_completed.setdefault(workflow_id, []).append(
                    int(slot)
                )
            elif kind == "run_start":
                index.run_start.append(dict(event))
            elif kind == "run_end":
                index.run_end.append(dict(event))
        return index

    def completion_of(self, job_id: str) -> Optional[int]:
        slots = self.completed.get(job_id)
        return slots[0] if slots else None

    def first_seen(self, job_id: str) -> Optional[int]:
        """Earliest readiness/arrival slot known for a job."""
        candidates = [
            s
            for s in (self.ready.get(job_id), self.arrived.get(job_id))
            if s is not None
        ]
        return min(candidates) if candidates else None

    @property
    def n_slots(self) -> Optional[int]:
        if not self.run_end:
            return None
        return int(self.run_end[0].get("n_slots", 0))

    @property
    def slot_seconds(self) -> Optional[float]:
        if self.run_start and "slot_seconds" in self.run_start[0]:
            return float(self.run_start[0]["slot_seconds"])
        return None


def validate_trace(
    events: Sequence[Mapping],
    *,
    trace: "SyntheticTrace | None" = None,
    capacity: "ClusterCapacity | None" = None,
    windows: Mapping[str, "JobWindow"] | None = None,
) -> VerificationReport:
    """Check a parsed event stream; deeper checks need workload context.

    Args:
        events: parsed trace events (:func:`repro.obs.read_trace`).
        trace: the workload that produced the run (enables precedence,
            conservation, and — with *capacity* — per-slot capacity checks).
        capacity: the cluster the run claimed to respect.
        windows: decomposed per-job windows; when given, completed jobs'
            end boundaries are checked against their windows only via
            :func:`recompute_trace_metrics` (metrics, not violations) —
            missing a deadline is an outcome, not an invariant violation.
    """
    report = VerificationReport()
    index = TraceIndex.build(events)

    report.check(
        "trace.run_markers",
        len(index.run_start) <= 1 and len(index.run_end) <= 1,
        f"{len(index.run_start)} run_start / {len(index.run_end)} run_end "
        "events (expected at most one each)",
    )
    report.check(
        "trace.seq",
        all(b > a for a, b in zip(index.seqs, index.seqs[1:])),
        "event sequence numbers are not strictly increasing",
    )

    _check_lifecycles(index, report)
    _check_workflow_events(index, report, trace)
    if trace is not None:
        _check_conservation(index, report, trace)
        _check_precedence(index, report, trace)
        if capacity is not None:
            _check_capacity(index, report, trace, capacity)
    return report


def _check_lifecycles(index: TraceIndex, report: VerificationReport) -> None:
    for job_id, slots in index.completed.items():
        report.check(
            "trace.unique_completion",
            len(slots) == 1,
            f"{len(slots)} job_completed events",
            subject=job_id,
        )
    for job_id, placements in index.placements.items():
        slots = [s for s, _ in placements]
        report.check(
            "trace.placement_units",
            all(units > 0 for _, units in placements),
            "a placement with non-positive units",
            subject=job_id,
        )
        report.check(
            "trace.placement_unique",
            len(set(slots)) == len(slots),
            "duplicate placement events in one slot",
            subject=job_id,
        )
        seen = index.first_seen(job_id)
        report.check(
            "trace.placed_when_ready",
            seen is not None and seen <= min(slots),
            f"first placement at slot {min(slots)} but job first "
            f"ready/arrived at {seen}",
            subject=job_id,
        )
        completion = index.completion_of(job_id)
        if completion is not None:
            report.check(
                "trace.completion_boundary",
                completion == max(slots) + 1,
                f"job_completed at slot {completion} but last placement "
                f"was slot {max(slots)}",
                subject=job_id,
            )
    for job_id in index.completed:
        report.check(
            "trace.completed_ran",
            job_id in index.placements,
            "completed without any recorded placement",
            subject=job_id,
        )


def _check_workflow_events(
    index: TraceIndex,
    report: VerificationReport,
    trace: "SyntheticTrace | None",
) -> None:
    members: dict[str, list[str]] = {}
    if trace is not None:
        for workflow in trace.workflows:
            members[workflow.workflow_id] = [j.job_id for j in workflow.jobs]
    else:
        for job_id, wid in index.workflow_of.items():
            members.setdefault(wid, []).append(job_id)

    for wid, slots in index.workflow_completed.items():
        report.check(
            "trace.workflow_unique_completion",
            len(slots) == 1,
            f"{len(slots)} workflow_completed events",
            subject=wid,
        )
        jobs = members.get(wid, [])
        ends = [index.completion_of(j) for j in jobs]
        if trace is not None:
            report.check(
                "trace.workflow_members_done",
                all(end is not None for end in ends),
                "workflow_completed with unfinished member jobs",
                subject=wid,
            )
        known = [end for end in ends if end is not None]
        if known:
            report.check(
                "trace.workflow_completion_boundary",
                slots[0] == max(known),
                f"workflow_completed at slot {slots[0]} but the last member "
                f"completed at slot {max(known)}",
                subject=wid,
            )
    if trace is not None:
        for workflow in trace.workflows:
            arrived = index.workflow_arrived.get(workflow.workflow_id)
            if arrived is not None:
                report.check(
                    "trace.workflow_arrival",
                    arrived >= workflow.start_slot,
                    f"arrived at slot {arrived}, before its start slot "
                    f"{workflow.start_slot}",
                    subject=workflow.workflow_id,
                )


def _workload_jobs(trace: "SyntheticTrace"):
    for workflow in trace.workflows:
        yield from workflow.jobs
    yield from trace.adhoc_jobs


def _check_conservation(
    index: TraceIndex, report: VerificationReport, trace: "SyntheticTrace"
) -> None:
    for job in _workload_jobs(trace):
        spec = job.execution_tasks
        placements = index.placements.get(job.job_id, [])
        report.check(
            "trace.parallelism",
            all(units <= spec.count for _, units in placements),
            f"a slot placed more than the job's {spec.count} tasks",
            subject=job.job_id,
        )
        gross = sum(units for _, units in placements)
        net = gross - index.setback_units.get(job.job_id, 0)
        total = spec.total_task_slots
        if index.completion_of(job.job_id) is not None:
            report.check(
                "trace.conservation",
                net == total,
                f"completed with {net} net executed units of {total} "
                f"({gross} placed, {gross - net} lost to setbacks)",
                subject=job.job_id,
            )
        else:
            report.check(
                "trace.conservation",
                net < total,
                f"never completed yet {net} net units cover its {total}",
                subject=job.job_id,
            )


def _check_precedence(
    index: TraceIndex, report: VerificationReport, trace: "SyntheticTrace"
) -> None:
    for workflow in trace.workflows:
        for parent_id, child_id in workflow.edges:
            subject = f"{parent_id} -> {child_id}"
            barrier = index.completion_of(parent_id)
            child_slots = [s for s, _ in index.placements.get(child_id, [])]
            if barrier is None:
                report.check(
                    "trace.precedence",
                    not child_slots
                    and index.completion_of(child_id) is None,
                    "child ran although its parent never completed",
                    subject=subject,
                )
                continue
            # The parent's completion event slot is the first slot the
            # child may run in (events deliver at the start of that slot).
            report.check(
                "trace.precedence",
                all(s >= barrier for s in child_slots),
                f"child placed at slot {min(child_slots)} before the "
                f"parent's completion boundary {barrier}"
                if child_slots
                else "",
                subject=subject,
            )
            ready = index.ready.get(child_id)
            if ready is not None and len(workflow.parents_of(child_id)) > 0:
                report.check(
                    "trace.precedence_ready",
                    ready >= barrier,
                    f"child ready at slot {ready} before the parent's "
                    f"completion boundary {barrier}",
                    subject=subject,
                )


def _check_capacity(
    index: TraceIndex,
    report: VerificationReport,
    trace: "SyntheticTrace",
    capacity: "ClusterCapacity",
) -> None:
    demands = {
        job.job_id: job.execution_tasks.demand for job in _workload_jobs(trace)
    }
    per_slot: dict[int, dict[str, float]] = {}
    for job_id, placements in index.placements.items():
        demand = demands.get(job_id)
        if demand is None:
            report.check(
                "trace.known_job",
                False,
                "placements for a job absent from the workload",
                subject=job_id,
            )
            continue
        for slot, units in placements:
            row = per_slot.setdefault(slot, {})
            for name, amount in demand.items():
                row[name] = row.get(name, 0.0) + amount * units
    for slot in sorted(per_slot):
        cap = capacity.at(slot)
        for name, amount in per_slot[slot].items():
            report.check(
                "trace.capacity",
                amount <= cap[name] + _EPS,
                f"{name} usage {amount:g} exceeds capacity {cap[name]:g}",
                slot=slot,
                subject=name,
            )


def recompute_trace_metrics(
    events: Sequence[Mapping],
    *,
    trace: "SyntheticTrace | None" = None,
    windows: Mapping[str, "JobWindow"] | None = None,
    slot_seconds: float | None = None,
) -> dict:
    """The headline metrics, re-derived purely from the event stream.

    Mirrors the shape of ``repro.simulator.metrics.summarize`` for the keys
    it can recompute (``jobs_missed``, ``workflows_missed``,
    ``adhoc_turnaround_s``, ``max_delta_s``, ``mean_delta_s``) without
    importing the metrics module.  ``slot_seconds`` defaults to the value
    recorded in the ``run_start`` event.
    """
    index = TraceIndex.build(events)
    if slot_seconds is None:
        slot_seconds = index.slot_seconds
    if slot_seconds is None:
        raise ValueError(
            "slot_seconds not in the trace's run_start event; pass it explicitly"
        )
    n_slots = index.n_slots
    if n_slots is None:
        raise ValueError("trace has no run_end event; cannot size the run")

    member_of: dict[str, str] = dict(index.workflow_of)
    if trace is not None:
        for workflow in trace.workflows:
            for job in workflow.jobs:
                member_of.setdefault(job.job_id, workflow.workflow_id)

    windows = windows or {}
    deltas: dict[str, float] = {}
    missed: list[str] = []
    for job_id, window in windows.items():
        end = index.completion_of(job_id)
        if end is None:
            arrived = (
                index.first_seen(job_id) is not None
                or member_of.get(job_id) in index.workflow_arrived
            )
            if not arrived:
                continue  # job never appeared in this trace
            end = n_slots + 1
        delta = (end - window.deadline_slot) * slot_seconds
        deltas[job_id] = delta
        if delta > 0:
            missed.append(job_id)

    if trace is not None:
        workflow_deadlines = {
            wf.workflow_id: wf.deadline_slot for wf in trace.workflows
        }
    else:
        workflow_deadlines = {}
        for event in events:
            if event.get("type") == "workflow_deadline_miss":
                workflow_deadlines[event["workflow_id"]] = event.get(
                    "deadline_slot", 0
                )
        for wid in index.workflow_arrived:
            workflow_deadlines.setdefault(wid, None)
    workflows_missed = []
    for wid, deadline in workflow_deadlines.items():
        completion = index.workflow_completed.get(wid)
        if completion is None:
            if wid in index.workflow_arrived or trace is not None:
                workflows_missed.append(wid)
        elif deadline is not None and completion[0] > deadline:
            # completion event slot == completion_slot + 1; missed iff
            # completion_slot >= deadline, i.e. event slot > deadline.
            workflows_missed.append(wid)

    # Ad-hoc jobs are exactly the ones announced by job_arrived events.
    turnarounds = []
    for job_id, arrival in index.arrived.items():
        end = index.completion_of(job_id)
        if end is not None:
            turnarounds.append(end - arrival)
        else:
            turnarounds.append(n_slots - arrival)
    turnaround_s = (
        sum(turnarounds) / len(turnarounds) * slot_seconds
        if turnarounds
        else None
    )
    return {
        "n_deadline_jobs": float(len(windows)),
        "jobs_missed": float(len(missed)),
        "missed_job_ids": tuple(sorted(missed)),
        "workflows_missed": float(len(workflows_missed)),
        "missed_workflow_ids": tuple(sorted(workflows_missed)),
        "adhoc_turnaround_s": turnaround_s,
        "max_delta_s": max(deltas.values(), default=0.0),
        "mean_delta_s": sum(deltas.values()) / len(deltas) if deltas else 0.0,
        "deltas_s": deltas,
    }
