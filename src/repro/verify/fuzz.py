"""Seeded fuzz harness: random workloads through every production path.

Each fuzz case draws a seeded random workload (cluster size, workflow
DAGs, ad-hoc stream) and pushes it through one production path —

* ``batch``: a cold batch simulation (:func:`repro.analysis.run_one`);
* ``replan``: the same with the plan cache and warm-started lexmin on;
* ``degraded``: with injected solver faults (:mod:`repro.chaos`), so the
  fallback ladder and EDF degraded mode are exercised;
* ``journal``: through the online service with a write-ahead journal, a
  mid-run kill, and a journal-replay restart.

Every result is checked by the independent :class:`~repro.verify.
ScheduleValidator` (capacity, precedence, conservation, windows) and its
reported metrics are recomputed from the records (``check_reported``).
A failing case is *shrunk* — workflows and ad-hoc jobs are dropped while
the failure reproduces — and persisted as a self-contained JSON repro
(wire-format workload + capacity + violations) for the seed corpus.

Entry points: :func:`run_fuzz` (budget- or case-bounded loop, used by
``scripts/fuzz_smoke.py``), :func:`run_case` (one seed x path),
:func:`persist_failure` / :func:`load_failure` (repro files).
"""

from __future__ import annotations

import itertools
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.workloads.traces import (
    SyntheticTrace,
    generate_trace,
    job_from_dict,
    job_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = [
    "FUZZ_PATHS",
    "FuzzFailure",
    "FuzzResult",
    "load_failure",
    "make_workload",
    "persist_failure",
    "run_case",
    "run_fuzz",
    "shrink_workload",
]

#: Production paths a fuzz case can exercise.
FUZZ_PATHS: tuple[str, ...] = ("batch", "replan", "degraded", "journal")

#: Bound on reproduction runs spent minimising one failing workload.
_MAX_SHRINK_RUNS = 40


@dataclass
class FuzzFailure:
    """One failing fuzz case, shrunk and ready to persist."""

    seed: int
    path: str
    violations: list[str]
    trace: SyntheticTrace
    capacity: ClusterCapacity
    #: (workflows, adhoc jobs) of the original workload before shrinking.
    original_size: tuple[int, int] = (0, 0)

    def describe(self) -> str:
        return (
            f"seed {self.seed} via {self.path}: "
            f"{len(self.violations)} violation(s), shrunk to "
            f"{len(self.trace.workflows)} workflow(s) + "
            f"{len(self.trace.adhoc_jobs)} ad-hoc job(s) "
            f"from {self.original_size[0]}+{self.original_size[1]}"
        )


@dataclass
class FuzzResult:
    """Outcome of one fuzz session."""

    cases: int = 0
    seeds_run: list[int] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"fuzz: {self.cases} cases over {len(self.seeds_run)} seeds "
            f"in {self.elapsed_s:.1f}s — {verdict}"
        )


# -- workload generation ------------------------------------------------------------


def make_workload(seed: int) -> tuple[SyntheticTrace, ClusterCapacity]:
    """A seeded small random workload plus a seeded random cluster.

    Sized so one case runs in well under a second: the point is path
    coverage across many seeds, not scale (the examples cover scale).
    """
    rng = np.random.default_rng(seed)
    cpu = int(rng.integers(16, 49))
    capacity = ClusterCapacity(base=ResourceVector({"cpu": cpu, "mem": 2 * cpu}))
    trace = generate_trace(
        n_workflows=int(rng.integers(1, 4)),
        jobs_per_workflow=int(rng.integers(3, 8)),
        n_adhoc=int(rng.integers(0, 10)),
        capacity=capacity,
        looseness=(2.0, 6.0),
        adhoc_rate_per_slot=float(rng.uniform(0.2, 0.8)),
        workflow_spread_slots=int(rng.integers(1, 20)),
        scientific=bool(rng.integers(0, 2)),
        seed=seed,
    )
    return trace, capacity


# -- one case -----------------------------------------------------------------------


def _validate_outcome(trace, capacity, result) -> list[str]:
    """Independent validation of one run's result; violation strings."""
    from repro.analysis.experiments import canonical_windows
    from repro.simulator.metrics import summarize
    from repro.verify import ScheduleValidator

    windows = canonical_windows(trace, capacity)
    jobs = [job for wf in trace.workflows for job in wf.jobs] + list(
        trace.adhoc_jobs
    )
    validator = ScheduleValidator(
        capacity, workflows=trace.workflows, jobs=jobs, windows=windows
    )
    report = validator.validate(result)
    validator.check_reported(result, summarize(result, windows), report)
    return [str(v) for v in report.violations]


def _run_batch(trace, capacity, seed: int, *, replan: bool) -> list[str]:
    from repro.analysis.experiments import run_one
    from repro.simulator.engine import SimulationConfig

    kwargs = (
        {"planner": {"plan_cache": True, "warm_start": True}} if replan else None
    )
    outcome = run_one(
        "FlowTime",
        trace,
        capacity,
        config=SimulationConfig(record_execution=True),
        scheduler_kwargs=kwargs,
    )
    return _validate_outcome(trace, capacity, outcome.result)


def _run_degraded(trace, capacity, seed: int) -> list[str]:
    from repro.analysis.experiments import run_one
    from repro.chaos import ChaosConfig, chaos_solver
    from repro.simulator.engine import SimulationConfig

    with chaos_solver(ChaosConfig(solver_fault_prob=0.25, seed=seed)):
        outcome = run_one(
            "FlowTime",
            trace,
            capacity,
            config=SimulationConfig(record_execution=True),
        )
    return _validate_outcome(trace, capacity, outcome.result)


def _run_journal(trace, capacity, seed: int) -> list[str]:
    """Submit, kill, journal-replay restart, drain — then validate."""
    from repro.service import SchedulerService, ServiceConfig

    with tempfile.TemporaryDirectory(prefix="fuzz-journal-") as tmp:
        journal = str(Path(tmp) / "journal.jsonl")
        config = ServiceConfig(
            admission=False,
            record_execution=True,
            journal_path=journal,
            journal_fsync=False,
        )
        service = SchedulerService(capacity, config).start()
        try:
            for workflow in trace.workflows:
                if not service.submit_workflow(workflow).accepted:
                    return [f"journal: workflow {workflow.workflow_id} rejected"]
            for job in trace.adhoc_jobs:
                if not service.submit_adhoc(job).accepted:
                    return [f"journal: ad-hoc {job.job_id} rejected"]
            service.kill(timeout=60)
            service = SchedulerService(capacity, config).start()
            result = service.drain(timeout=300)
        finally:
            if not service.draining:
                service.kill(timeout=60)
    return _validate_outcome(trace, capacity, result)


def run_case(
    trace: SyntheticTrace,
    capacity: ClusterCapacity,
    path: str,
    seed: int,
) -> list[str]:
    """Run one workload through one production path; violation strings.

    An unexpected exception counts as a failure too — the harness's
    contract is "every path completes and validates clean".
    """
    runners: dict[str, Callable[[], list[str]]] = {
        "batch": lambda: _run_batch(trace, capacity, seed, replan=False),
        "replan": lambda: _run_batch(trace, capacity, seed, replan=True),
        "degraded": lambda: _run_degraded(trace, capacity, seed),
        "journal": lambda: _run_journal(trace, capacity, seed),
    }
    if path not in runners:
        raise ValueError(f"unknown fuzz path {path!r}; known: {FUZZ_PATHS}")
    try:
        return runners[path]()
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        return [f"{path}: raised {type(error).__name__}: {error}"]


# -- shrinking ----------------------------------------------------------------------


def shrink_workload(
    trace: SyntheticTrace,
    capacity: ClusterCapacity,
    path: str,
    seed: int,
) -> SyntheticTrace:
    """Greedily drop workflows/ad-hoc jobs while the failure reproduces."""
    budget = _MAX_SHRINK_RUNS

    def still_fails(candidate: SyntheticTrace) -> bool:
        nonlocal budget
        if budget <= 0:
            return False
        budget -= 1
        return bool(run_case(candidate, capacity, path, seed))

    current = trace
    progress = True
    while progress and budget > 0:
        progress = False
        for i in range(len(current.workflows)):
            candidate = SyntheticTrace(
                workflows=current.workflows[:i] + current.workflows[i + 1 :],
                adhoc_jobs=current.adhoc_jobs,
            )
            if (candidate.workflows or candidate.adhoc_jobs) and still_fails(
                candidate
            ):
                current = candidate
                progress = True
                break
        if progress:
            continue
        # Halve the ad-hoc stream from the back, then drop stragglers.
        n = len(current.adhoc_jobs)
        for keep in (n // 2, n - 1):
            if keep < 0 or keep >= n:
                continue
            candidate = SyntheticTrace(
                workflows=current.workflows,
                adhoc_jobs=current.adhoc_jobs[:keep],
            )
            if (candidate.workflows or candidate.adhoc_jobs) and still_fails(
                candidate
            ):
                current = candidate
                progress = True
                break
    return current


# -- persistence --------------------------------------------------------------------


def persist_failure(failure: FuzzFailure, out_dir: str | Path) -> Path:
    """Write one failing case as a self-contained JSON repro file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"fuzz-{failure.path}-seed{failure.seed}.json"
    payload = {
        "seed": failure.seed,
        "path": failure.path,
        "violations": failure.violations,
        "original_size": list(failure.original_size),
        "capacity": dict(failure.capacity.base),
        "workflows": [workflow_to_dict(wf) for wf in failure.trace.workflows],
        "adhoc_jobs": [job_to_dict(job) for job in failure.trace.adhoc_jobs],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_failure(path: str | Path) -> FuzzFailure:
    """Reload a persisted repro file (``run_case`` re-runs it)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    trace = SyntheticTrace(
        workflows=tuple(workflow_from_dict(item) for item in data["workflows"]),
        adhoc_jobs=tuple(job_from_dict(item) for item in data["adhoc_jobs"]),
    )
    return FuzzFailure(
        seed=int(data["seed"]),
        path=str(data["path"]),
        violations=list(data.get("violations", [])),
        trace=trace,
        capacity=ClusterCapacity(base=ResourceVector(data["capacity"])),
        original_size=tuple(data.get("original_size", (0, 0))),
    )


# -- the fuzz loop ------------------------------------------------------------------


def run_fuzz(
    *,
    budget_s: Optional[float] = None,
    max_seeds: Optional[int] = None,
    corpus_seeds: Sequence[int] = (),
    start_seed: int = 1000,
    paths: Iterable[str] = FUZZ_PATHS,
    out_dir: str | Path | None = None,
    shrink: bool = True,
    log: Callable[[str], None] = lambda _msg: None,
) -> FuzzResult:
    """The fuzz session: corpus seeds first, then fresh seeds until done.

    Stops when ``budget_s`` wall seconds elapse or ``max_seeds`` seeds
    ran, whichever comes first (at least the corpus always runs).  With
    ``out_dir`` set, every failure is shrunk (unless ``shrink=False``)
    and persisted there as a repro JSON.
    """
    paths = tuple(paths)
    result = FuzzResult()
    started = time.monotonic()

    def out_of_budget() -> bool:
        if budget_s is not None and time.monotonic() - started >= budget_s:
            return True
        return max_seeds is not None and len(result.seeds_run) >= max_seeds

    corpus = list(dict.fromkeys(int(s) for s in corpus_seeds))
    fresh = (s for s in itertools.count(start_seed) if s not in set(corpus))
    for from_corpus, seed in itertools.chain(
        ((True, s) for s in corpus), ((False, s) for s in fresh)
    ):
        if not from_corpus and out_of_budget():
            break
        trace, capacity = make_workload(seed)
        result.seeds_run.append(seed)
        for path in paths:
            violations = run_case(trace, capacity, path, seed)
            result.cases += 1
            if not violations:
                continue
            log(f"fuzz failure: seed {seed} path {path}: {violations[0]}")
            original = (len(trace.workflows), len(trace.adhoc_jobs))
            small = (
                shrink_workload(trace, capacity, path, seed)
                if shrink
                else trace
            )
            failure = FuzzFailure(
                seed=seed,
                path=path,
                violations=violations,
                trace=small,
                capacity=capacity,
                original_size=original,
            )
            result.failures.append(failure)
            if out_dir is not None:
                persist_failure(failure, out_dir)
    result.elapsed_s = time.monotonic() - started
    return result
