"""Independent verification subsystem (docs/VERIFICATION.md).

Re-derives scheduler correctness from raw outputs with no code shared with
the planner: an independent :class:`ScheduleValidator` over simulation
results, trace-only validation and metric recomputation over JSONL event
streams, a brute-force differential oracle for tiny instances
(:mod:`repro.verify.oracle`), a seeded fuzz harness driving the batch,
re-planning, degraded, and journal-replay paths
(:mod:`repro.verify.fuzz`), the golden-trace corpus tooling
(:mod:`repro.verify.golden`), and the cross-shard conservation check for
sharded deployments (:mod:`repro.verify.cross_shard`).
"""

from repro.verify.cross_shard import check_cross_shard_conservation
from repro.verify.trace_check import (
    TraceIndex,
    recompute_trace_metrics,
    validate_trace,
)
from repro.verify.validator import (
    RuntimeVerifier,
    ScheduleValidator,
    VerificationError,
    VerificationReport,
    Violation,
)

__all__ = [
    "RuntimeVerifier",
    "ScheduleValidator",
    "TraceIndex",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "check_cross_shard_conservation",
    "recompute_trace_metrics",
    "validate_trace",
]
