"""Independent verification subsystem (docs/VERIFICATION.md).

Re-derives scheduler correctness from raw outputs with no code shared with
the planner: an independent :class:`ScheduleValidator` over simulation
results, trace-only validation and metric recomputation over JSONL event
streams, a brute-force differential oracle for tiny instances
(:mod:`repro.verify.oracle`), a seeded fuzz harness driving the batch,
re-planning, degraded, and journal-replay paths
(:mod:`repro.verify.fuzz`), and the golden-trace corpus tooling
(:mod:`repro.verify.golden`).
"""

from repro.verify.trace_check import (
    TraceIndex,
    recompute_trace_metrics,
    validate_trace,
)
from repro.verify.validator import (
    RuntimeVerifier,
    ScheduleValidator,
    VerificationError,
    VerificationReport,
    Violation,
)

__all__ = [
    "RuntimeVerifier",
    "ScheduleValidator",
    "TraceIndex",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "recompute_trace_metrics",
    "validate_trace",
]
