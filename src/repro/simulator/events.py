"""Event-queue engine core: virtual time advances to the next event.

The slot-stepped :class:`~repro.simulator.runtime.EngineCore` pays one
full step — view construction, a scheduler decide, usage-row appends —
for *every* slot, busy or not.  For sparse workloads (arrival gaps, idle
drain tails, fine slot resolutions) that is O(slots) work while nothing
happens.  :class:`EventEngineCore` keeps a heap of typed *due events* —

* :class:`ArrivalDue` — a registered workflow or ad-hoc job reaches its
  arrival slot;
* :class:`CompletionDue` — completions from the previous executed slot
  are deliverable (readiness releases, workflow completion);
* :class:`ReplanDue` — non-completion pending work (setbacks from
  failure injection, migration withdrawals) needs a scheduler pass;
* :class:`DrainDue` — a graceful-drain deadline caps how far virtual
  time may coast.

— and **jumps** the clock straight to the next due slot whenever the
current slot is provably idle, instead of stepping through the gap.

Outcome equivalence with the slot engine is by construction, not by
re-implementation: every *busy* slot is executed by the inherited
:meth:`EngineCore.step`, so event delivery, decide, execution, failure
injection and completion propagation are literally the same code.  A
slot may be skipped only when

1. no engine events are pending delivery (``_pending_events`` empty),
   and
2. no registered, incomplete job has arrived (``live == 0``).

On such a slot the scheduler's decide is state-neutral (no runnable
work, the empty-plan branch allocates nothing and counts no replan),
execution is empty, the failure RNG is never consulted (it rolls per
*executed* job only), and no trace events fire — so skipping it changes
nothing observable except wall-clock cost.  Skipped slots still append
all-zero usage/granted rows (and empty execution rows), keeping
:meth:`~repro.simulator.runtime.EngineCore.result` arrays identical to
a slot-stepped run.  ``tests/test_engine_equivalence.py`` pins this
across 50+ seeded workloads and all production path families.

Tie-break order (the documented contract, shared by both engines):
within one slot, events are delivered to the scheduler as

1. carry-over events from the previous executed slot — completions,
   readiness releases, setbacks, withdrawals — in generation order;
2. workflow arrivals in registration order, each immediately followed
   by its root jobs' readiness events;
3. ad-hoc job arrivals in registration order.

The event heap mirrors that precedence in its ordering key
``(slot, priority, sequence)`` with completion < replan < workflow
arrival < ad-hoc arrival < drain, so two events due at the identical
slot always resolve identically — there is no tie-break drift between
cores (pinned by a Hypothesis property in the equivalence battery).

Jumping is disabled (``jump_enabled = False``) when the caller paces
the clock against wall time (``repro serve --realtime``): virtual time
must not race ahead of the wall clock that maps slots to seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.simulator.runtime import EngineCore, StepOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.cluster import ClusterCapacity
    from repro.schedulers.base import Scheduler
    from repro.simulator.engine import SimulationConfig

__all__ = [
    "ArrivalDue",
    "CompletionDue",
    "DrainDue",
    "EventEngineCore",
    "EventQueue",
    "ReplanDue",
    "SimEvent",
]


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One scheduled wakeup in virtual time.

    ``priority`` is the within-slot precedence class (see the module
    docstring); subclasses pin it.  ``entity_id``/``token`` identify the
    registration an arrival belongs to — a withdrawn-and-re-registered
    entity gets a fresh token, so stale heap entries are detectable.
    """

    slot: int
    entity_id: str = ""
    token: int = 0

    priority = 99  # subclasses override; class attr keeps instances frozen


class CompletionDue(SimEvent):
    """Completions of the previous executed slot become deliverable."""

    priority = 0


class ReplanDue(SimEvent):
    """Non-completion pending events (setback, withdrawal) need a pass."""

    priority = 1


class ArrivalDue(SimEvent):
    """A registered workflow reaches its arrival slot."""

    priority = 2


class AdhocArrivalDue(ArrivalDue):
    """A registered ad-hoc job reaches its arrival slot."""

    priority = 3


class DrainDue(SimEvent):
    """Graceful-drain deadline: virtual time must not coast past it."""

    priority = 4


class EventQueue:
    """A deterministic min-heap of :class:`SimEvent`.

    Ordered by ``(slot, priority, sequence)``: events due at the same
    slot resolve by precedence class, then strictly by push order — the
    heap can never compare two events as equal, so ordering is total
    and identical across interpreters/hash seeds.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, SimEvent]] = []
        self._seq = 0

    def push(self, event: SimEvent) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (event.slot, event.priority, self._seq, event))

    def peek(self) -> Optional[SimEvent]:
        return self._heap[0][3] if self._heap else None

    def pop(self) -> SimEvent:
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[SimEvent]:
        """Events in due order (non-destructive; sorted copy)."""
        return (entry[3] for entry in sorted(self._heap))


class EventEngineCore(EngineCore):
    """Event-driven engine: identical busy slots, skipped idle ones.

    Drop-in for :class:`~repro.simulator.runtime.EngineCore` — selected
    with ``SimulationConfig(engine="events")`` / ``repro run --engine
    events`` / ``ServiceConfig(engine="events")``.  See the module
    docstring for the skip-safety argument and tie-break contract.
    """

    def __init__(
        self,
        cluster: "ClusterCapacity",
        scheduler: "Scheduler",
        config: "SimulationConfig",
        obs,
    ):
        super().__init__(cluster, scheduler, config, obs)
        self.events = EventQueue()
        #: Jump permission: the service clears this under ``--realtime``
        #: so virtual time never races the wall clock pacing it.
        self.jump_enabled = True
        #: Slots skipped by fast-forward over the whole run.
        self.slots_skipped = 0
        # Arrived-and-incomplete jobs (the "live" count): settled lazily
        # from the arrival heap, decremented on completion/withdrawal.
        self._live = 0
        # Registration generation per entity id: an arrival heap entry
        # is valid only while its token matches (withdraw + re-register
        # mints a new token, invalidating the old entry in place).
        self._reg_tokens: dict[str, int] = {}
        self._token_seq = 0
        self._drain_slot: Optional[int] = None
        self._skipped_counter = obs.counter("sim.slots.skipped")

    # -- registration (heap bookkeeping on top of the base class) -----------------

    def _push_arrival(self, entity_id: str, slot: int, cls: type) -> None:
        self._token_seq += 1
        token = self._token_seq
        self._reg_tokens[entity_id] = token
        self.events.push(cls(slot=slot, entity_id=entity_id, token=token))

    def add_workflow(self, workflow: Workflow, *, request_id: str | None = None) -> None:
        super().add_workflow(workflow, request_id=request_id)
        arrival = self._workflow_arrival[workflow.workflow_id]
        self._push_arrival(workflow.workflow_id, arrival, ArrivalDue)

    def add_adhoc(self, job: Job, *, request_id: str | None = None) -> None:
        super().add_adhoc(job, request_id=request_id)
        arrival = self._runs[job.job_id].arrival_slot
        self._push_arrival(job.job_id, arrival, AdhocArrivalDue)

    def remove_workflow(self, workflow_id: str) -> Workflow:
        arrival = self._workflow_arrival.get(workflow_id)
        workflow = super().remove_workflow(workflow_id)
        # Invalidate the heap entry; un-count the jobs if already live.
        # Mutations only ever happen between steps, where arrivals
        # strictly before the current slot are settled into ``_live``
        # and the current slot's own arrivals are not yet.
        self._reg_tokens.pop(workflow_id, None)
        if arrival is not None and arrival < self.slot:
            self._live -= len(workflow)
        # The withdrawal queued a pending event for the scheduler: make
        # sure the next step is not skipped over it.
        self.events.push(ReplanDue(slot=self.slot, entity_id=workflow_id))
        return workflow

    # -- live bookkeeping ---------------------------------------------------------

    def _settle(self, slot: int) -> None:
        """Fold every due heap event at or before *slot* into ``_live``."""
        events = self.events
        while True:
            event = events.peek()
            if event is None or event.slot > slot:
                return
            events.pop()
            if not isinstance(event, ArrivalDue):
                continue  # wakeups/drain markers carry no live delta
            if self._reg_tokens.get(event.entity_id) != event.token:
                continue  # superseded registration (withdrawn/re-added)
            if isinstance(event, AdhocArrivalDue):
                run = self._runs.get(event.entity_id)
                if run is not None and not run.done:
                    self._live += 1
            else:
                workflow = self.workflows.get(event.entity_id)
                if workflow is not None:
                    self._live += sum(
                        1
                        for job in workflow.jobs
                        if not self._runs[job.job_id].done
                    )

    def _next_arrival_slot(self) -> Optional[int]:
        """Earliest valid future arrival, discarding stale heap entries."""
        events = self.events
        while True:
            event = events.peek()
            if event is None:
                return None
            if isinstance(event, ArrivalDue):
                if self._reg_tokens.get(event.entity_id) != event.token:
                    events.pop()
                    continue
                return event.slot
            # Completion/replan wakeups at future slots only exist while
            # their pending events do — and pending events already veto
            # jumping — so any entry reached here is a spent marker.
            events.pop()

    # -- drain --------------------------------------------------------------------

    def schedule_drain(self, deadline_slot: int) -> None:
        """Cap fast-forward at the graceful-drain deadline.

        The drain loop stops at ``deadline_slot`` whether or not work
        remains; a jump straight to a post-deadline arrival would
        overshoot the cap and diverge from the slot engine.
        """
        self._drain_slot = deadline_slot
        self.events.push(DrainDue(slot=deadline_slot))

    # -- stepping -----------------------------------------------------------------

    def _fast_forward(self, to_slot: int) -> None:
        """Advance the clock over provably idle slots.

        Appends the all-zero usage/granted (and empty execution) rows a
        slot-stepped run would have recorded, so result arrays — and
        the validator's per-slot conservation checks — are identical.
        """
        skipped = to_slot - self.slot
        if skipped <= 0:
            return
        zero_row = [0.0] * len(self.cluster.resources)
        self._usage_rows.extend([zero_row] * skipped)
        self._granted_rows.extend([zero_row] * skipped)
        if self._record_execution:
            self._execution_rows.extend({} for _ in range(skipped))
        self.slots_skipped += skipped
        self._skipped_counter.inc(skipped)
        self.slot = to_slot

    def step(self) -> StepOutcome:
        """Advance to the next event, then execute that slot normally.

        When the current slot is idle (nothing pending, nothing live),
        the clock jumps to the earliest future arrival — or coasts to
        the ``max_slots``/drain cap when every remaining arrival lies
        beyond it, returning an empty outcome without executing.
        """
        self._settle(self.slot)
        if self.jump_enabled and self._live == 0 and not self._pending_events:
            target = self._next_arrival_slot()
            cap = self.config.max_slots
            if self._drain_slot is not None:
                cap = min(cap, self._drain_slot)
            if target is not None and target > self.slot:
                if target > cap:
                    # Every remaining arrival is past the horizon: coast
                    # to the cap and report an empty slot, exactly where
                    # a slot-stepped loop would stop.
                    self._fast_forward(max(cap, self.slot))
                    return StepOutcome(slot=self.slot)
                self._fast_forward(target)
                self._settle(self.slot)
        outcome = super().step()
        self._live -= len(outcome.completions)
        # Mirror next-slot obligations into the queue as typed wakeups:
        # completions (readiness releases) and other carried-over events
        # force the immediately following slot to execute.  Jumping is
        # vetoed by ``_pending_events`` directly; these entries keep the
        # heap a faithful record of every due event and are discarded by
        # ``_settle`` once delivered.
        if outcome.completions:
            self.events.push(CompletionDue(slot=self.slot))
        elif self._pending_events:
            self.events.push(ReplanDue(slot=self.slot))
        return outcome
