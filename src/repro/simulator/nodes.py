"""Node-level cluster modelling and task placement.

The paper's formulation — like our default engine — treats the cluster as
one aggregate resource pool (``C_t^r``).  Real clusters are machines: a
grant of 40 cores is only usable if the individual tasks *pack* onto nodes,
and multi-core tasks fragment.  This module adds that layer:

* :class:`NodeCluster` — a bag of (possibly heterogeneous) nodes;
* :meth:`NodeCluster.pack` — best-fit-decreasing placement of one slot's
  granted task units onto nodes, reporting what could not be placed.

Wire it into a simulation with ``SimulationConfig(node_cluster=...)``: the
engine then executes only the units that actually place, and records the
*fragmentation waste* (granted but unplaceable units) per slot.  Schedulers
keep seeing the aggregate view — which is exactly how the mismatch between
the paper's model and a real deployment shows up, and what EXT-10 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector


@dataclass(frozen=True)
class PackResult:
    """Outcome of packing one slot's grants onto nodes.

    Attributes:
        placed: per job, how many task units found a node.
        unplaced: per job, granted units that did not fit anywhere
            (fragmentation waste; empty when everything placed).
        node_loads: resulting per-node load vectors (diagnostics).
    """

    placed: Mapping[str, int]
    unplaced: Mapping[str, int]
    node_loads: tuple[ResourceVector, ...] = field(repr=False, default=())

    @property
    def total_unplaced(self) -> int:
        return sum(self.unplaced.values())


class NodeCluster:
    """A cluster as individual machines.

    Nodes may be heterogeneous; :meth:`aggregate` is what the slot-based
    scheduler model sees, :meth:`pack` is what physics allows.
    """

    def __init__(self, nodes: Sequence[ResourceVector]):
        if not nodes:
            raise ValueError("a node cluster needs at least one node")
        for node in nodes:
            if node.is_zero():
                raise ValueError("nodes must have non-zero capacity")
        self._nodes = tuple(nodes)

    @staticmethod
    def uniform(n_nodes: int, **amounts: int) -> "NodeCluster":
        """``n_nodes`` identical machines (e.g. ``uniform(8, cpu=8, mem=16)``)."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return NodeCluster([ResourceVector(amounts)] * n_nodes)

    @property
    def nodes(self) -> tuple[ResourceVector, ...]:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def aggregate(self) -> ResourceVector:
        return ResourceVector.sum(self._nodes)

    def as_capacity(self) -> ClusterCapacity:
        """The aggregate :class:`ClusterCapacity` schedulers should be given."""
        return ClusterCapacity(base=self.aggregate())

    def pack(
        self, requests: Sequence[tuple[str, ResourceVector, int]]
    ) -> PackResult:
        """Place one slot's granted task units onto nodes.

        Args:
            requests: ``(job_id, per-task demand, units)`` triples.

        Best-fit decreasing: jobs' units are placed largest-demand first
        (by dominant share against a node), each unit onto the node with
        the least residual capacity that still fits — the classic
        fragmentation-minimising heuristic YARN-style packers use.
        """
        residual = list(self._nodes)
        reference = self._nodes[0]

        def size(demand: ResourceVector) -> float:
            return demand.dominant_share(reference)

        placed: dict[str, int] = {}
        unplaced: dict[str, int] = {}
        ordered = sorted(requests, key=lambda r: size(r[1]), reverse=True)
        for job_id, demand, units in ordered:
            if units <= 0:
                continue
            done = 0
            for _ in range(units):
                best_node = -1
                best_headroom = None
                for idx, free in enumerate(residual):
                    if not demand.fits_in(free):
                        continue
                    headroom = (free.saturating_sub(demand)).dominant_share(
                        reference
                    )
                    if best_headroom is None or headroom < best_headroom:
                        best_node, best_headroom = idx, headroom
                if best_node < 0:
                    break
                residual[best_node] = residual[best_node].saturating_sub(demand)
                done += 1
            placed[job_id] = placed.get(job_id, 0) + done
            if done < units:
                unplaced[job_id] = unplaced.get(job_id, 0) + (units - done)
        loads = tuple(
            node.saturating_sub(free) for node, free in zip(self._nodes, residual)
        )
        return PackResult(placed=placed, unplaced=unplaced, node_loads=loads)
