"""The slot-based simulation engine.

One engine run drives one scheduler over one workload (workflows plus an
ad-hoc stream) on one cluster.  Per slot:

1. deliver the slot's events (workflow/job arrivals, readiness transitions,
   completions from the previous slot) to the scheduler;
2. ask the scheduler for task-unit grants and validate them — grants to
   unknown, unready, or finished jobs and grants exceeding capacity are
   engine errors (they would be scheduler bugs, not workload conditions);
3. execute: each granted unit runs one *true* task-slot; a job whose
   estimate was wrong simply finishes earlier or later than the scheduler
   believed (the scheduler only ever sees believed progress);
4. process completions, releasing dependent jobs for the next slot.

Tasks are preemptible at slot boundaries with retained progress, the
executable reading of the paper's formulation (its demand constraint (2)
treats a job as a divisible amount of work placed freely in its window).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.model.cluster import ClusterCapacity
from repro.model.events import (
    Event,
    JobArrived,
    JobCompleted,
    JobReady,
    JobSetback,
    WorkflowArrived,
    WorkflowCompleted,
)
from repro.obs import Observability, use_obs
from repro.model.job import Job, JobKind
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.simulator.failures import FailureModel
from repro.simulator.nodes import NodeCluster
from repro.simulator.result import JobRecord, SimulationResult, WorkflowRecord
from repro.simulator.view import AdhocJobView, ClusterView, DeadlineJobView

if TYPE_CHECKING:  # imported lazily to avoid a package import cycle
    from repro.schedulers.base import Scheduler


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs.

    Attributes:
        slot_seconds: wall-clock duration of one slot (paper: 10 s).
        max_slots: hard stop; a run not finished by then returns
            ``finished=False`` with whatever completed.
        strict: validate scheduler assignments (grants to unready jobs,
            over-capacity grants) by raising instead of clamping.
        record_execution: keep a per-slot record of executed task units per
            job (enables Gantt rendering; costs memory on long runs).
        failures: optional failure model injecting progress setbacks.
        node_cluster: optional node-level topology; when set, granted task
            units must also *pack* onto individual nodes, and units lost to
            fragmentation are recorded (schedulers keep the aggregate view).
    """

    slot_seconds: float = 10.0
    max_slots: int = 50_000
    strict: bool = True
    record_execution: bool = False
    failures: FailureModel | None = None
    node_cluster: NodeCluster | None = None


class _JobRun:
    """Mutable runtime state of one job."""

    __slots__ = (
        "job",
        "arrival_slot",
        "ready_slot",
        "completion_slot",
        "executed_units",
        "unmet_parents",
    )

    def __init__(self, job: Job, arrival_slot: int, unmet_parents: int):
        self.job = job
        self.arrival_slot = arrival_slot
        self.ready_slot: Optional[int] = None
        self.completion_slot: Optional[int] = None
        self.executed_units = 0
        self.unmet_parents = unmet_parents

    @property
    def true_total_units(self) -> int:
        return self.job.execution_tasks.total_task_slots

    @property
    def true_remaining_units(self) -> int:
        return self.true_total_units - self.executed_units

    @property
    def done(self) -> bool:
        return self.completion_slot is not None

    def ready_at(self, slot: int) -> bool:
        return self.ready_slot is not None and self.ready_slot <= slot

    def believed_remaining_units(self) -> int:
        """What the scheduler thinks is left, from the estimated structure.

        When a job overruns its estimate the scheduler cannot know the
        remaining tail, but it *can* see the job's outstanding container
        requests (every real resource manager does), so the belief floors
        at the currently visible requests instead of a 1-unit trickle.
        """
        if self.done:
            return 0
        est_remaining = self.job.tasks.total_task_slots - self.executed_units
        if est_remaining > 0:
            return est_remaining
        return min(self.job.execution_tasks.count, self.true_remaining_units)


class Simulation:
    """One simulation run binding a cluster, a scheduler, and a workload."""

    def __init__(
        self,
        cluster: ClusterCapacity,
        scheduler: "Scheduler",
        workflows: Iterable[Workflow] = (),
        adhoc_jobs: Iterable[Job] = (),
        config: SimulationConfig | None = None,
        obs: Observability | None = None,
    ):
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        # Each simulation owns its observability handle (metrics registry +
        # trace sink); the default records metrics into a private registry
        # and traces nowhere.  It is installed as the context-wide handle
        # only while ``run`` executes, so concurrent/sequential simulations
        # never share metric state.
        self.obs = obs if obs is not None else Observability()
        self.workflows: dict[str, Workflow] = {}
        self._runs: dict[str, _JobRun] = {}
        self._workflow_completion: dict[str, Optional[int]] = {}
        self._workflow_remaining: dict[str, int] = {}
        self._fragmentation_waste = 0

        for workflow in workflows:
            if workflow.workflow_id in self.workflows:
                raise ValueError(f"duplicate workflow {workflow.workflow_id}")
            self.workflows[workflow.workflow_id] = workflow
            self._workflow_completion[workflow.workflow_id] = None
            self._workflow_remaining[workflow.workflow_id] = len(workflow)
            for job in workflow.jobs:
                if job.job_id in self._runs:
                    raise ValueError(f"duplicate job id {job.job_id}")
                self._runs[job.job_id] = _JobRun(
                    job,
                    arrival_slot=workflow.start_slot,
                    unmet_parents=len(workflow.parents_of(job.job_id)),
                )
        for job in adhoc_jobs:
            if job.kind is not JobKind.ADHOC:
                raise ValueError(f"job {job.job_id} in adhoc_jobs is not ADHOC")
            if job.job_id in self._runs:
                raise ValueError(f"duplicate job id {job.job_id}")
            self._runs[job.job_id] = _JobRun(
                job, arrival_slot=job.arrival_slot, unmet_parents=0
            )

        self._validate_workload()

    def _validate_workload(self) -> None:
        base = self.cluster.base
        nodes = self.config.node_cluster
        if nodes is not None and not base.fits_in(nodes.aggregate()):
            raise ValueError(
                "aggregate cluster capacity exceeds the node cluster's total"
            )
        for run in self._runs.values():
            for spec in (run.job.tasks, run.job.execution_tasks):
                if not spec.demand.fits_in(base):
                    raise ValueError(
                        f"job {run.job.job_id}: one task does not fit the cluster"
                    )
                if nodes is not None and not any(
                    spec.demand.fits_in(node) for node in nodes.nodes
                ):
                    raise ValueError(
                        f"job {run.job.job_id}: one task does not fit any node"
                    )

    # -- views -------------------------------------------------------------------

    def _view(self, slot: int) -> ClusterView:
        deadline_views = []
        adhoc_views = []
        for run in self._runs.values():
            job = run.job
            if job.kind is JobKind.DEADLINE:
                if run.arrival_slot > slot:
                    continue  # workflow not submitted yet
                deadline_views.append(
                    DeadlineJobView(
                        job_id=job.job_id,
                        workflow_id=job.workflow_id or "",
                        arrival_slot=run.arrival_slot,
                        ready=run.ready_at(slot),
                        completed=run.done,
                        est_spec=job.tasks,
                        executed_units=run.executed_units,
                        believed_remaining_units=run.believed_remaining_units(),
                    )
                )
            else:
                if run.arrival_slot > slot:
                    continue
                # Ad-hoc jobs expose only their *outstanding container
                # requests* (at most one per task), never total size.
                pending = min(
                    job.execution_tasks.count, run.true_remaining_units
                )
                adhoc_views.append(
                    AdhocJobView(
                        job_id=job.job_id,
                        arrival_slot=run.arrival_slot,
                        unit_demand=job.execution_tasks.demand,
                        pending_units=pending,
                        completed=run.done,
                    )
                )
        visible_workflows = {
            wid: wf
            for wid, wf in self.workflows.items()
            if wf.start_slot <= slot
        }
        return ClusterView(
            slot=slot,
            capacity=self.cluster,
            deadline_jobs=tuple(deadline_views),
            adhoc_jobs=tuple(adhoc_views),
            workflows=visible_workflows,
        )

    # -- run loop --------------------------------------------------------------

    def run(self) -> SimulationResult:
        # Install this simulation's observability handle for the whole run
        # so the algorithm layers (decomposition, LP, admission) reached
        # from scheduler callbacks record into *this* registry.
        with use_obs(self.obs):
            return self._run_loop()

    def _run_loop(self) -> SimulationResult:
        config = self.config
        obs = self.obs
        tracing = obs.tracing
        resources = self.cluster.resources
        usage_rows: list[list[float]] = []
        granted_rows: list[list[float]] = []
        execution_rows: list[dict[str, int]] = []
        pending_events: list[Event] = []
        planning_calls = 0
        planning_seconds = 0.0
        # Slowest-slot tracking for the per-phase report: which slot cost
        # the most wall-clock time, and how much of it was the scheduler.
        slowest = (-1.0, -1, 0.0)  # (seconds, slot, decide_seconds)
        prev_running: set[str] = set()
        # Prefer the span-wrapped ``decide`` of repro schedulers; duck-typed
        # stand-ins (test doubles) only need ``assign``.
        decide = getattr(self.scheduler, "decide", self.scheduler.assign)

        failure_rng = config.failures.rng() if config.failures else None
        remaining_jobs = sum(1 for run in self._runs.values() if not run.done)
        slot = 0
        finished = remaining_jobs == 0
        obs.event(
            "run_start",
            scheduler=getattr(self.scheduler, "name", ""),
            n_jobs=len(self._runs),
            n_workflows=len(self.workflows),
        )
        obs.log(
            logging.INFO,
            "simulation start: %d jobs, %d workflows, scheduler=%s",
            len(self._runs), len(self.workflows),
            getattr(self.scheduler, "name", ""),
        )
        while not finished and slot < config.max_slots:
            slot_span = obs.span("sim.slot")
            slot_span.__enter__()
            events = pending_events
            pending_events = []

            # Arrivals at this slot.
            for workflow in self.workflows.values():
                if workflow.start_slot == slot:
                    events.append(
                        WorkflowArrived(slot=slot, workflow_id=workflow.workflow_id)
                    )
                    for job_id in workflow.roots():
                        run = self._runs[job_id]
                        run.ready_slot = slot
                        events.append(
                            JobReady(
                                slot=slot,
                                job_id=job_id,
                                workflow_id=workflow.workflow_id,
                            )
                        )
            for run in self._runs.values():
                if (
                    run.job.kind is JobKind.ADHOC
                    and run.arrival_slot == slot
                ):
                    run.ready_slot = slot
                    events.append(JobArrived(slot=slot, job_id=run.job.job_id))

            if tracing:
                self._trace_events(events)

            view = self._view(slot)
            start = time.perf_counter()
            if events:
                self.scheduler.on_events(events, view)
            assignment = decide(view)
            decide_seconds = time.perf_counter() - start
            planning_seconds += decide_seconds
            planning_calls += 1

            usage, granted, completions, executed = self._execute(
                slot, assignment, view
            )
            usage_rows.append([usage[r] for r in resources])
            granted_rows.append([granted[r] for r in resources])
            if config.record_execution:
                execution_rows.append(executed)

            if tracing:
                for job_id, units in executed.items():
                    obs.event(
                        "task_placement", slot=slot, job_id=job_id, units=units
                    )
                # Preemption at a slot boundary: a job that ran last slot,
                # is still unfinished, and received nothing this slot.
                running = set(executed)
                for job_id in prev_running - running:
                    if not self._runs[job_id].done:
                        obs.event("job_preempted", slot=slot, job_id=job_id)
                prev_running = running

            # Failure injection: jobs that ran but did not complete may lose
            # progress (a crashed container redoes work).  Completed jobs
            # are safe — their outputs are materialised.
            if failure_rng is not None:
                done = set(completions)
                for job_id in executed:
                    if job_id in done:
                        continue
                    run = self._runs[job_id]
                    lost = config.failures.roll(failure_rng, run.executed_units)
                    if lost > 0:
                        run.executed_units -= lost
                        pending_events.append(
                            JobSetback(
                                slot=slot + 1,
                                job_id=job_id,
                                lost_units=lost,
                                workflow_id=run.job.workflow_id,
                            )
                        )

            # Completions propagate readiness and workflow completion events
            # delivered at the start of the next slot.
            for job_id in completions:
                run = self._runs[job_id]
                workflow_id = run.job.workflow_id
                pending_events.append(
                    JobCompleted(slot=slot + 1, job_id=job_id, workflow_id=workflow_id)
                )
                if workflow_id is not None:
                    workflow = self.workflows[workflow_id]
                    self._workflow_remaining[workflow_id] -= 1
                    if self._workflow_remaining[workflow_id] == 0:
                        self._workflow_completion[workflow_id] = slot
                        pending_events.append(
                            WorkflowCompleted(slot=slot + 1, workflow_id=workflow_id)
                        )
                        if tracing and slot >= workflow.deadline_slot:
                            obs.event(
                                "workflow_deadline_miss",
                                slot=slot,
                                workflow_id=workflow_id,
                                deadline_slot=workflow.deadline_slot,
                            )
                    for child in workflow.dependents_of(job_id):
                        child_run = self._runs[child]
                        child_run.unmet_parents -= 1
                        if child_run.unmet_parents == 0:
                            child_run.ready_slot = slot + 1
                            pending_events.append(
                                JobReady(
                                    slot=slot + 1,
                                    job_id=child,
                                    workflow_id=workflow_id,
                                )
                            )
            remaining_jobs -= len(completions)
            finished = remaining_jobs == 0
            slot += 1
            slot_span.__exit__(None, None, None)
            if slot_span.elapsed > slowest[0]:
                slowest = (slot_span.elapsed, slot - 1, decide_seconds)

        if pending_events:
            if tracing:
                self._trace_events(pending_events)
            # Deliver the final completion events (observability: schedulers
            # and tests can see the run close out) without asking for work.
            self.scheduler.on_events(pending_events, self._view(slot))

        if slowest[1] >= 0:
            obs.gauge("sim.slowest_slot").set(slowest[1])
            obs.gauge("sim.slowest_slot_seconds").set(slowest[0])
            obs.gauge("sim.slowest_slot_decide_seconds").set(slowest[2])
        # Planner-owning schedulers (duck-typed: scheduler.planner.plan_cache)
        # get their end-of-run cache state mirrored into the metrics, so
        # SimulationResult.metrics carries the steady-state hit rate without
        # callers reaching into scheduler internals.
        cache = getattr(getattr(self.scheduler, "planner", None), "plan_cache", None)
        if cache is not None:
            obs.gauge("sched.plan.cache.entries").set(len(cache))
            obs.gauge("sched.plan.cache.hit_rate").set(cache.hit_rate)
        obs.event("run_end", n_slots=slot, finished=finished)
        obs.log(
            logging.INFO,
            "simulation end: %d slots, finished=%s", slot, finished,
        )
        return self._result(slot, finished, usage_rows, granted_rows,
                            execution_rows, planning_calls, planning_seconds)

    def _trace_events(self, events: list[Event]) -> None:
        """Mirror engine events into the trace (types match EventKind values)."""
        obs = self.obs
        for event in events:
            fields = {
                key: value
                for key, value in vars(event).items()
                if key != "slot" and value is not None
            }
            obs.event(event.kind.value, slot=event.slot, **fields)

    def _execute(
        self, slot: int, assignment, view: ClusterView
    ) -> tuple[ResourceVector, ResourceVector, list[str], dict[str, int]]:
        """Run one slot of granted work.

        Returns (used, granted, completions, executed-units-per-job).
        """
        capacity = self.cluster.at(slot)
        granted_total = ResourceVector()
        used_total = ResourceVector()
        completions: list[str] = []
        executed: dict[str, int] = {}

        # Pass 1: validate grants and derive how many *true* tasks the
        # granted resources can host per job.
        runnable: list[tuple[str, int]] = []  # (job_id, desired true tasks)
        for job_id, units in assignment.items():
            if units <= 0:
                continue
            run = self._runs.get(job_id)
            if run is None:
                raise ValueError(f"scheduler granted unknown job {job_id!r}")
            if run.done or not run.ready_at(slot):
                if self.config.strict:
                    raise ValueError(
                        f"scheduler granted units to job {job_id!r} which is "
                        f"{'done' if run.done else 'not ready'} at slot {slot}"
                    )
                continue
            believed_demand = run.job.tasks.demand
            grant_vec = believed_demand * int(units)
            granted_total = granted_total + grant_vec

            # Execution uses the *true* structure: the engine runs as many
            # true task-slots as the granted resources can host.
            true_spec = run.job.execution_tasks
            tasks_run = min(
                true_spec.demand.units_fitting(grant_vec),
                true_spec.count,
                run.true_remaining_units,
            )
            if tasks_run > 0:
                runnable.append((job_id, tasks_run))

        # Node-level placement: tasks must also pack onto machines; units
        # lost to fragmentation simply do not run this slot.
        if self.config.node_cluster is not None and runnable:
            pack = self.config.node_cluster.pack(
                [
                    (job_id, self._runs[job_id].job.execution_tasks.demand, tasks)
                    for job_id, tasks in runnable
                ]
            )
            self._fragmentation_waste += pack.total_unplaced
            runnable = [
                (job_id, pack.placed.get(job_id, 0)) for job_id, _ in runnable
            ]

        # Pass 2: execute.
        for job_id, tasks_run in runnable:
            if tasks_run <= 0:
                continue
            run = self._runs[job_id]
            true_spec = run.job.execution_tasks
            run.executed_units += tasks_run
            executed[job_id] = tasks_run
            used_total = used_total + true_spec.demand * tasks_run
            if run.true_remaining_units == 0:
                run.completion_slot = slot
                completions.append(job_id)

        if not granted_total.fits_in(capacity):
            if self.config.strict:
                raise ValueError(
                    f"slot {slot}: scheduler granted {dict(granted_total)} "
                    f"exceeding capacity {dict(capacity)}"
                )
        return used_total, granted_total, completions, executed

    def _result(
        self,
        n_slots: int,
        finished: bool,
        usage_rows: list[list[float]],
        granted_rows: list[list[float]],
        execution_rows: list[dict[str, int]],
        planning_calls: int,
        planning_seconds: float,
    ) -> SimulationResult:
        resources = self.cluster.resources
        jobs = {
            job_id: JobRecord(
                job_id=job_id,
                kind=run.job.kind,
                workflow_id=run.job.workflow_id,
                arrival_slot=run.arrival_slot,
                ready_slot=run.ready_slot,
                completion_slot=run.completion_slot,
                true_units=run.true_total_units,
                est_units=run.job.tasks.total_task_slots,
            )
            for job_id, run in self._runs.items()
        }
        workflow_records = {
            wid: WorkflowRecord(
                workflow_id=wid,
                start_slot=wf.start_slot,
                deadline_slot=wf.deadline_slot,
                completion_slot=self._workflow_completion[wid],
            )
            for wid, wf in self.workflows.items()
        }
        shape = (max(len(usage_rows), 1), len(resources))
        usage = np.zeros(shape)
        granted = np.zeros(shape)
        if usage_rows:
            usage[: len(usage_rows)] = np.asarray(usage_rows)
            granted[: len(granted_rows)] = np.asarray(granted_rows)
        return SimulationResult(
            slot_seconds=self.config.slot_seconds,
            n_slots=n_slots,
            finished=finished,
            jobs=jobs,
            workflows=workflow_records,
            usage=usage,
            granted=granted,
            resources=resources,
            scheduler_name=getattr(self.scheduler, "name", ""),
            planning_calls=planning_calls,
            planning_seconds=planning_seconds,
            execution=tuple(execution_rows),
            fragmentation_waste_units=self._fragmentation_waste,
            metrics=self.obs.registry.snapshot(),
        )
