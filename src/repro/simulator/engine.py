"""The slot-based batch simulation frontend.

One :class:`Simulation` run drives one scheduler over one *canned* workload
(workflows plus an ad-hoc stream) on one cluster.  Per slot:

1. deliver the slot's events (workflow/job arrivals, readiness transitions,
   completions from the previous slot) to the scheduler;
2. ask the scheduler for task-unit grants and validate them — grants to
   unknown, unready, or finished jobs and grants exceeding capacity are
   engine errors (they would be scheduler bugs, not workload conditions);
3. execute: each granted unit runs one *true* task-slot; a job whose
   estimate was wrong simply finishes earlier or later than the scheduler
   believed (the scheduler only ever sees believed progress);
4. process completions, releasing dependent jobs for the next slot.

Tasks are preemptible at slot boundaries with retained progress, the
executable reading of the paper's formulation (its demand constraint (2)
treats a job as a divisible amount of work placed freely in its window).

The slot machinery itself lives in :class:`~repro.simulator.runtime.
EngineCore`, shared with the online scheduler service
(:mod:`repro.service`): this class owns the *batch* clock — register the
whole workload up front, then spin slots as fast as possible until every
job completes (or ``max_slots``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.model.cluster import ClusterCapacity
from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.obs import Observability, use_obs
from repro.simulator.failures import FailureModel
from repro.simulator.nodes import NodeCluster
from repro.simulator.result import SimulationResult
from repro.simulator.runtime import EngineCore, make_engine_core

if TYPE_CHECKING:  # imported lazily to avoid a package import cycle
    from repro.schedulers.base import Scheduler


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs.

    Attributes:
        slot_seconds: wall-clock duration of one slot (paper: 10 s).
        max_slots: hard stop; a run not finished by then returns
            ``finished=False`` with whatever completed.
        strict: validate scheduler assignments (grants to unready jobs,
            over-capacity grants) by raising instead of clamping.
        record_execution: keep a per-slot record of executed task units per
            job (enables Gantt rendering; costs memory on long runs).
        failures: optional failure model injecting progress setbacks.
        node_cluster: optional node-level topology; when set, granted task
            units must also *pack* onto individual nodes, and units lost to
            fragmentation are recorded (schedulers keep the aggregate view).
        verify: run the independent runtime assertion layer
            (:mod:`repro.verify`): every slot is re-checked against
            capacity/readiness/completion invariants as it executes, the
            full :class:`~repro.verify.ScheduleValidator` runs over the
            final result, and the run raises
            :class:`~repro.verify.VerificationError` on any violation
            (``repro run --verify``).  Off by default — it costs a
            per-slot recheck and turns on execution recording.
        lp_backend: LP solver backend name (``repro.lp.available_backends``)
            for planner-based schedulers.  The engine never constructs
            schedulers itself, so this is a *plumbing* field: run harnesses
            (:func:`repro.analysis.experiments.run_one`, the golden-trace
            corpus) read it and fold it into the FlowTime planner kwargs.
            ``None`` keeps each scheduler's own default.
        engine: which engine core steps the clock — ``"slots"`` (the
            historical slot-stepped :class:`~repro.simulator.runtime.
            EngineCore`) or ``"events"`` (the event-queue
            :class:`~repro.simulator.events.EventEngineCore`, which
            jumps idle gaps; outcome-identical, see
            ``tests/test_engine_equivalence.py``).
    """

    slot_seconds: float = 10.0
    max_slots: int = 50_000
    strict: bool = True
    record_execution: bool = False
    failures: FailureModel | None = None
    node_cluster: NodeCluster | None = None
    verify: bool = False
    lp_backend: str | None = None
    engine: str = "slots"


class Simulation:
    """One simulation run binding a cluster, a scheduler, and a workload."""

    def __init__(
        self,
        cluster: ClusterCapacity,
        scheduler: "Scheduler",
        workflows: Iterable[Workflow] = (),
        adhoc_jobs: Iterable[Job] = (),
        config: SimulationConfig | None = None,
        obs: Observability | None = None,
    ):
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        # Each simulation owns its observability handle (metrics registry +
        # trace sink); the default records metrics into a private registry
        # and traces nowhere.  It is installed as the context-wide handle
        # only while ``run`` executes, so concurrent/sequential simulations
        # never share metric state.
        self.obs = obs if obs is not None else Observability()
        self._core = make_engine_core(cluster, scheduler, self.config, self.obs)
        self._core.validate_cluster()
        for workflow in workflows:
            self._core.add_workflow(workflow)
        for job in adhoc_jobs:
            self._core.add_adhoc(job)

    @property
    def workflows(self) -> dict[str, Workflow]:
        return self._core.workflows

    # -- run loop --------------------------------------------------------------

    def run(self) -> SimulationResult:
        # Install this simulation's observability handle for the whole run
        # so the algorithm layers (decomposition, LP, admission) reached
        # from scheduler callbacks record into *this* registry.
        with use_obs(self.obs):
            return self._run_loop()

    def _run_loop(self) -> SimulationResult:
        core = self._core
        core.emit_run_start()
        while not core.finished and core.slot < self.config.max_slots:
            core.step()
        core.flush_pending_events()
        core.finalize_metrics()
        finished = core.finished
        core.emit_run_end(finished)
        result = core.result(finished)
        if self.config.verify:
            result.verification = self._verify(core, result)
        return result

    def _verify(self, core: EngineCore, result: SimulationResult):
        """Full end-of-run validation of a ``verify=True`` run.

        Merges the per-slot runtime report with a fresh independent pass of
        the :class:`~repro.verify.ScheduleValidator` over the final result
        and raises :class:`~repro.verify.VerificationError` on any
        violation (the assertion-layer contract of ``run --verify``).
        """
        from repro.verify import ScheduleValidator

        report = (
            core.verifier.report
            if core.verifier is not None
            else None
        )
        validator = ScheduleValidator(
            self.cluster,
            workflows=core.workflows.values(),
            jobs=[run.job for run in core.job_runs()],
            allow_setbacks=self.config.failures is not None,
        )
        full = validator.validate(result)
        if report is not None:
            report.merge(full)
        else:
            report = full
        report.raise_if_violations()
        return report
