"""Metrics matching the paper's evaluation (Sec. VII-A "Metrics").

The paper reports, per algorithm: the distribution of (completion time -
deadline) for deadline-aware jobs (Fig. 4a), the number of jobs that miss
their deadlines (Fig. 4b), the average job turnaround time of ad-hoc jobs
(Fig. 4c), and the number of workflows meeting their deadlines.

Per-*job* deadlines are not a property of the workload (only workflows carry
deadlines); the evaluation uses the decomposed estimated deadlines as the
per-job ground truth, identical for every algorithm, which is what the
``windows`` argument carries.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.decomposition_types import JobWindow
from repro.model.cluster import ClusterCapacity
from repro.model.job import JobKind
from repro.simulator.result import JobRecord, SimulationResult


def _end_slot(record: JobRecord, n_slots: int) -> int:
    """The exclusive end-slot boundary of a job's execution.

    A job completing in slot ``s`` occupies ``[arrival, s]`` and its work
    ends at boundary ``s + 1``; an unfinished job's earliest possible
    completion is slot ``n_slots`` (the first un-simulated slot), so its
    end boundary is at least ``n_slots + 1``.  Both the delta and the miss
    metrics derive from this single convention: a job is late iff its end
    boundary exceeds its (exclusive) deadline slot, i.e. iff its deadline
    delta is strictly positive.
    """
    if record.completion_slot is not None:
        return record.completion_slot + 1
    return n_slots + 1


def adhoc_turnaround_seconds(result: SimulationResult) -> float:
    """Average job turnaround time of ad-hoc jobs, in seconds (Fig. 4c).

    Turnaround = completion time - submission time.  Jobs that never
    finished (simulation truncated) count with the simulation end as their
    completion, which under-reports — callers should check
    ``result.finished``.  With no ad-hoc jobs in the workload the metric
    is undefined and NaN is returned (0.0 would read as "perfect
    turnaround" in reports); renderers print it as ``n/a``.
    """
    turnarounds = []
    for record in result.jobs_of_kind(JobKind.ADHOC):
        if record.completion_slot is not None:
            slots = record.turnaround_slots()
        else:
            slots = result.n_slots - record.arrival_slot
        turnarounds.append(slots)
    if not turnarounds:
        return float("nan")
    return float(np.mean(turnarounds)) * result.slot_seconds


def deadline_deltas_seconds(
    result: SimulationResult, windows: Mapping[str, JobWindow]
) -> dict[str, float]:
    """Per-job (completion time - deadline) in seconds (Fig. 4a).

    Negative values mean the job finished before its deadline.  Jobs missing
    from *windows* (ad-hoc jobs) are skipped; unfinished jobs use the
    simulation end, a lower bound on their lateness.
    """
    deltas: dict[str, float] = {}
    for job_id, window in windows.items():
        record = result.jobs.get(job_id)
        if record is None:
            continue
        end = _end_slot(record, result.n_slots)
        deltas[job_id] = (end - window.deadline_slot) * result.slot_seconds
    return deltas


def missed_jobs(
    result: SimulationResult, windows: Mapping[str, JobWindow]
) -> list[str]:
    """Deadline-aware jobs that finished after their deadline (Fig. 4b).

    Shares the end-slot convention of :func:`deadline_deltas_seconds`: a
    job is missed iff its delta is strictly positive, so a job finishing
    exactly at its deadline (``delta == 0.0`` s) is *not* missed.
    """
    missed = []
    for job_id, window in windows.items():
        record = result.jobs.get(job_id)
        if record is None:
            continue
        if _end_slot(record, result.n_slots) > window.deadline_slot:
            missed.append(job_id)
    return sorted(missed)


def missed_workflows(result: SimulationResult) -> list[str]:
    """Workflows that finished after their own (un-decomposed) deadline."""
    missed = []
    for wid, record in result.workflows.items():
        if record.completion_slot is None or not record.met_deadline:
            missed.append(wid)
    return sorted(missed)


def utilization_timeline(
    result: SimulationResult, cluster: ClusterCapacity
) -> np.ndarray:
    """Per-slot max-over-resources utilisation of *used* resources."""
    n_slots, n_resources = result.usage.shape
    caps = np.zeros((n_slots, n_resources))
    for slot in range(n_slots):
        cap = cluster.at(slot)
        for r, name in enumerate(result.resources):
            caps[slot, r] = cap[name]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(caps > 0, result.usage / caps, 0.0)
    return ratio.max(axis=1) if n_resources else np.zeros(n_slots)


def summarize(
    result: SimulationResult, windows: Mapping[str, JobWindow]
) -> dict[str, float | None]:
    """One-line summary used by the comparison harness and reports.

    ``adhoc_turnaround_s`` is ``None`` when the workload had no ad-hoc
    jobs (the metric is undefined; renderers show ``n/a``).  When the run
    recorded observability metrics, scheduler decision-latency stats (the
    live-run Fig. 7 quantity) are included as ``decide_ms_*``.
    """
    deltas = deadline_deltas_seconds(result, windows)
    missed = missed_jobs(result, windows)
    turnaround = adhoc_turnaround_seconds(result)
    summary: dict[str, float | None] = {
        "n_deadline_jobs": float(len(windows)),
        "jobs_missed": float(len(missed)),
        "workflows_missed": float(len(missed_workflows(result))),
        "adhoc_turnaround_s": None if np.isnan(turnaround) else turnaround,
        "max_delta_s": max(deltas.values(), default=0.0),
        "mean_delta_s": float(np.mean(list(deltas.values()))) if deltas else 0.0,
        "finished": float(result.finished),
    }
    decide = result.phase_stats("sched.decide")
    if decide is not None and decide["count"]:
        summary["decide_ms_p50"] = decide["p50"] * 1000.0
        summary["decide_ms_p95"] = decide["p95"] * 1000.0
        summary["decide_ms_mean"] = decide["mean"] * 1000.0
        summary["decide_ms_max"] = decide["max"] * 1000.0
    return summary
