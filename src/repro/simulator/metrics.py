"""Metrics matching the paper's evaluation (Sec. VII-A "Metrics").

The paper reports, per algorithm: the distribution of (completion time -
deadline) for deadline-aware jobs (Fig. 4a), the number of jobs that miss
their deadlines (Fig. 4b), the average job turnaround time of ad-hoc jobs
(Fig. 4c), and the number of workflows meeting their deadlines.

Per-*job* deadlines are not a property of the workload (only workflows carry
deadlines); the evaluation uses the decomposed estimated deadlines as the
per-job ground truth, identical for every algorithm, which is what the
``windows`` argument carries.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.decomposition_types import JobWindow
from repro.model.cluster import ClusterCapacity
from repro.model.job import JobKind
from repro.simulator.result import SimulationResult


def adhoc_turnaround_seconds(result: SimulationResult) -> float:
    """Average job turnaround time of ad-hoc jobs, in seconds (Fig. 4c).

    Turnaround = completion time - submission time.  Jobs that never
    finished (simulation truncated) count with the simulation end as their
    completion, which under-reports — callers should check
    ``result.finished``.
    """
    turnarounds = []
    for record in result.jobs_of_kind(JobKind.ADHOC):
        if record.completion_slot is not None:
            slots = record.turnaround_slots()
        else:
            slots = result.n_slots - record.arrival_slot
        turnarounds.append(slots)
    if not turnarounds:
        return 0.0
    return float(np.mean(turnarounds)) * result.slot_seconds


def deadline_deltas_seconds(
    result: SimulationResult, windows: Mapping[str, JobWindow]
) -> dict[str, float]:
    """Per-job (completion time - deadline) in seconds (Fig. 4a).

    Negative values mean the job finished before its deadline.  Jobs missing
    from *windows* (ad-hoc jobs) are skipped; unfinished jobs use the
    simulation end, a lower bound on their lateness.
    """
    deltas: dict[str, float] = {}
    for job_id, window in windows.items():
        record = result.jobs.get(job_id)
        if record is None:
            continue
        end_slot = (
            record.completion_slot + 1
            if record.completion_slot is not None
            else result.n_slots
        )
        deltas[job_id] = (end_slot - window.deadline_slot) * result.slot_seconds
    return deltas


def missed_jobs(
    result: SimulationResult, windows: Mapping[str, JobWindow]
) -> list[str]:
    """Deadline-aware jobs that finished after their deadline (Fig. 4b)."""
    missed = []
    for job_id, window in windows.items():
        record = result.jobs.get(job_id)
        if record is None:
            continue
        if record.completion_slot is None or record.completion_slot >= window.deadline_slot:
            missed.append(job_id)
    return sorted(missed)


def missed_workflows(result: SimulationResult) -> list[str]:
    """Workflows that finished after their own (un-decomposed) deadline."""
    missed = []
    for wid, record in result.workflows.items():
        if record.completion_slot is None or not record.met_deadline:
            missed.append(wid)
    return sorted(missed)


def utilization_timeline(
    result: SimulationResult, cluster: ClusterCapacity
) -> np.ndarray:
    """Per-slot max-over-resources utilisation of *used* resources."""
    n_slots, n_resources = result.usage.shape
    caps = np.zeros((n_slots, n_resources))
    for slot in range(n_slots):
        cap = cluster.at(slot)
        for r, name in enumerate(result.resources):
            caps[slot, r] = cap[name]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(caps > 0, result.usage / caps, 0.0)
    return ratio.max(axis=1) if n_resources else np.zeros(n_slots)


def summarize(
    result: SimulationResult, windows: Mapping[str, JobWindow]
) -> dict[str, float]:
    """One-line summary used by the comparison harness and reports."""
    deltas = deadline_deltas_seconds(result, windows)
    missed = missed_jobs(result, windows)
    return {
        "n_deadline_jobs": float(len(windows)),
        "jobs_missed": float(len(missed)),
        "workflows_missed": float(len(missed_workflows(result))),
        "adhoc_turnaround_s": adhoc_turnaround_seconds(result),
        "max_delta_s": max(deltas.values(), default=0.0),
        "mean_delta_s": float(np.mean(list(deltas.values()))) if deltas else 0.0,
        "finished": float(result.finished),
    }
