"""What schedulers are allowed to see.

The information asymmetry of Sec. II-A is enforced here: deadline-aware
workflow jobs expose their full *estimated* structure (they recur, so prior
runs provide it), while ad-hoc jobs expose only their per-task container
request and how many requests are currently outstanding — never their total
size or duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow


@dataclass(frozen=True)
class DeadlineJobView:
    """A deadline-aware job as the scheduler sees it.

    ``believed_remaining_units`` is derived from the *estimated* task
    structure minus observed progress; when a job overruns its estimate it
    stays at 1 until the engine reports completion (the scheduler cannot
    know the true tail — that is the estimation-error robustness story).
    """

    job_id: str
    workflow_id: str
    arrival_slot: int
    ready: bool
    completed: bool
    est_spec: TaskSpec
    executed_units: int
    believed_remaining_units: int

    @property
    def unit_demand(self) -> ResourceVector:
        return self.est_spec.demand

    @property
    def max_parallel(self) -> int:
        return self.est_spec.count


@dataclass(frozen=True)
class AdhocJobView:
    """An ad-hoc job: only its outstanding container requests are visible."""

    job_id: str
    arrival_slot: int
    unit_demand: ResourceVector
    pending_units: int
    completed: bool


@dataclass(frozen=True)
class ClusterView:
    """Read-only snapshot handed to schedulers each slot."""

    slot: int
    capacity: ClusterCapacity
    deadline_jobs: tuple[DeadlineJobView, ...]
    adhoc_jobs: tuple[AdhocJobView, ...]
    workflows: Mapping[str, Workflow]

    def capacity_now(self) -> ResourceVector:
        return self.capacity.at(self.slot)

    def deadline_job(self, job_id: str) -> DeadlineJobView:
        for job in self.deadline_jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(job_id)

    def live_deadline_jobs(self) -> tuple[DeadlineJobView, ...]:
        """Deadline jobs whose workflow arrived and that are not done."""
        return tuple(j for j in self.deadline_jobs if not j.completed)

    def runnable_deadline_jobs(self) -> tuple[DeadlineJobView, ...]:
        return tuple(
            j for j in self.deadline_jobs if j.ready and not j.completed
        )

    def waiting_adhoc_jobs(self) -> tuple[AdhocJobView, ...]:
        """Ad-hoc jobs with outstanding requests, in arrival (FIFO) order."""
        waiting = [
            j for j in self.adhoc_jobs if not j.completed and j.pending_units > 0
        ]
        waiting.sort(key=lambda j: (j.arrival_slot, j.job_id))
        return tuple(waiting)


def fit_units(
    leftover: ResourceVector, demand: ResourceVector, wanted: int
) -> int:
    """How many task units of *demand* fit into *leftover* (capped by wanted)."""
    if wanted <= 0:
        return 0
    try:
        fit = demand.units_fitting(leftover)
    except ValueError:  # zero demand cannot happen for valid specs; defensive
        return 0
    return min(fit, wanted)


def subtract_grant(
    leftover: ResourceVector, demand: ResourceVector, units: int
) -> ResourceVector:
    return leftover.saturating_sub(demand * units)
