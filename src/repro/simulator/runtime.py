"""The slot-stepping engine core, shared by batch and online frontends.

Historically the slot loop lived inside :class:`~repro.simulator.engine.
Simulation`, which made it inseparable from a *canned* workload: every
workflow and ad-hoc job had to be known at construction time.  The online
scheduler service (:mod:`repro.service`) needs the same execution semantics
— event delivery, grant validation, true-vs-believed progress, completion
propagation — over a workload that *arrives while the clock runs*.

:class:`EngineCore` is that machinery, factored out:

* jobs and workflows can be registered at any time (``add_workflow`` /
  ``add_adhoc``); an entity registered after its declared start simply
  arrives at the current slot (you cannot submit into the past);
* :meth:`step` advances exactly one slot — deliver events, ask the
  scheduler to decide, execute, propagate completions — and reports what
  happened, so callers own the clock: the batch
  :class:`~repro.simulator.engine.Simulation` spins it as fast as possible,
  the service paces it (virtual or wall-clock-scaled);
* :meth:`result` snapshots the same :class:`~repro.simulator.result.
  SimulationResult` the batch simulator always produced.

Outcome equivalence between the two frontends is by construction: both
drive this class, so a workload submitted to the service before its start
slots executes slot-for-slot identically to the same workload replayed
through ``Simulation``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.model.cluster import ClusterCapacity
from repro.model.events import (
    Event,
    JobArrived,
    JobCompleted,
    JobReady,
    JobSetback,
    WorkflowArrived,
    WorkflowCompleted,
    WorkflowWithdrawn,
)
from repro.model.job import Job, JobKind
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.simulator.result import JobRecord, SimulationResult, WorkflowRecord
from repro.simulator.view import AdhocJobView, ClusterView, DeadlineJobView

if TYPE_CHECKING:  # imported lazily to avoid a package import cycle
    from repro.schedulers.base import Scheduler
    from repro.simulator.engine import SimulationConfig

__all__ = ["EngineCore", "JobRun", "StepOutcome", "make_engine_core"]


def _stamp(request_id: str | None) -> dict[str, str]:
    """kwargs fragment adding a request-id stamp only when one is known."""
    return {} if request_id is None else {"request_id": request_id}


class JobRun:
    """Mutable runtime state of one job."""

    __slots__ = (
        "job",
        "arrival_slot",
        "ready_slot",
        "completion_slot",
        "executed_units",
        "unmet_parents",
    )

    def __init__(self, job: Job, arrival_slot: int, unmet_parents: int):
        self.job = job
        self.arrival_slot = arrival_slot
        self.ready_slot: Optional[int] = None
        self.completion_slot: Optional[int] = None
        self.executed_units = 0
        self.unmet_parents = unmet_parents

    @property
    def true_total_units(self) -> int:
        return self.job.execution_tasks.total_task_slots

    @property
    def true_remaining_units(self) -> int:
        return self.true_total_units - self.executed_units

    @property
    def done(self) -> bool:
        return self.completion_slot is not None

    def ready_at(self, slot: int) -> bool:
        return self.ready_slot is not None and self.ready_slot <= slot

    def believed_remaining_units(self) -> int:
        """What the scheduler thinks is left, from the estimated structure.

        When a job overruns its estimate the scheduler cannot know the
        remaining tail, but it *can* see the job's outstanding container
        requests (every real resource manager does), so the belief floors
        at the currently visible requests instead of a 1-unit trickle.
        """
        if self.done:
            return 0
        est_remaining = self.job.tasks.total_task_slots - self.executed_units
        if est_remaining > 0:
            return est_remaining
        return min(self.job.execution_tasks.count, self.true_remaining_units)


@dataclass
class StepOutcome:
    """What one :meth:`EngineCore.step` did (one slot of execution)."""

    slot: int
    events: list[Event] = field(default_factory=list)
    completions: list[str] = field(default_factory=list)
    executed: dict[str, int] = field(default_factory=dict)
    decide_seconds: float = 0.0

    @property
    def n_workflow_arrivals(self) -> int:
        return sum(1 for e in self.events if isinstance(e, WorkflowArrived))

    @property
    def n_adhoc_arrivals(self) -> int:
        return sum(1 for e in self.events if isinstance(e, JobArrived))


def make_engine_core(
    cluster: ClusterCapacity,
    scheduler: "Scheduler",
    config: "SimulationConfig",
    obs,
) -> "EngineCore":
    """Build the engine core ``config.engine`` selects.

    ``"slots"`` is the historical slot-stepped :class:`EngineCore`;
    ``"events"`` the event-queue :class:`~repro.simulator.events.
    EventEngineCore` that jumps idle gaps (imported lazily — the events
    module subclasses this one).
    """
    engine = getattr(config, "engine", "slots") or "slots"
    if engine == "slots":
        return EngineCore(cluster, scheduler, config, obs)
    if engine == "events":
        from repro.simulator.events import EventEngineCore

        return EventEngineCore(cluster, scheduler, config, obs)
    raise ValueError(
        f"unknown engine {engine!r} (choose 'slots' or 'events')"
    )


def _apply_lp_backend(scheduler: "Scheduler", backend: str) -> None:
    """Point a planner-based scheduler at the configured LP backend.

    Schedulers built by name (the CLI, ``run_one``, the service) receive
    ``lp_backend`` through their planner kwargs before construction; this
    covers scheduler *objects* handed straight to the engine.  An
    explicitly configured planner backend wins — only the registry
    default is overridden.
    """
    from dataclasses import replace

    from repro.lp.solver import DEFAULT_BACKEND

    planner = getattr(scheduler, "planner", None)
    pconfig = getattr(planner, "config", None)
    if pconfig is None or getattr(pconfig, "backend", None) != DEFAULT_BACKEND:
        return
    if backend != DEFAULT_BACKEND:
        planner.config = replace(pconfig, backend=backend)


class EngineCore:
    """Dynamic slot-stepping core binding a cluster, a scheduler, and jobs.

    The caller owns the clock: each :meth:`step` call executes exactly one
    slot.  Work may be registered before the run starts (the batch
    simulator) or between steps (the online service).
    """

    def __init__(
        self,
        cluster: ClusterCapacity,
        scheduler: "Scheduler",
        config: "SimulationConfig",
        obs,
    ):
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config
        self.obs = obs
        self.workflows: dict[str, Workflow] = {}
        self.slot = 0
        self._runs: dict[str, JobRun] = {}
        self._workflow_arrival: dict[str, int] = {}
        self._workflow_completion: dict[str, Optional[int]] = {}
        self._workflow_remaining: dict[str, int] = {}
        self._fragmentation_waste = 0
        self._pending_events: list[Event] = []
        self._usage_rows: list[list[float]] = []
        self._granted_rows: list[list[float]] = []
        self._execution_rows: list[dict[str, int]] = []
        self._planning_calls = 0
        self._planning_seconds = 0.0
        # Slowest-slot tracking for the per-phase report: which slot cost
        # the most wall-clock time, and how much of it was the scheduler.
        self._slowest = (-1.0, -1, 0.0)  # (seconds, slot, decide_seconds)
        self._prev_running: set[str] = set()
        self._remaining_jobs = 0
        self._live_adhoc = 0
        # Prefer the span-wrapped ``decide`` of repro schedulers; duck-typed
        # stand-ins (test doubles) only need ``assign``.
        self._decide = getattr(scheduler, "decide", scheduler.assign)
        if config.lp_backend:
            _apply_lp_backend(scheduler, config.lp_backend)
        self._failure_rng = config.failures.rng() if config.failures else None
        # The independent runtime assertion layer (repro.verify), enabled
        # by config.verify: each executed slot is re-checked from the raw
        # executed units, never from the scheduler's own bookkeeping.
        # Imported lazily — verification is opt-in and the verify package
        # depends on this module's result types.
        self.verifier = None
        self._record_execution = config.record_execution
        if getattr(config, "verify", False):
            from repro.verify import RuntimeVerifier

            self.verifier = RuntimeVerifier(cluster)
            # The end-of-run conservation checks need per-slot execution
            # rows, so a verified run always records them.
            self._record_execution = True
        # Request correlation: entity id (workflow or job) -> request id.
        # Engine events fire on the stepping thread long after the
        # submission's context (and its request-id contextvar) is gone, so
        # the mapping recorded at registration is what stamps them.
        self._request_ids: dict[str, str] = {}
        # SLO feed metrics, resolved once (the null handle returns detached
        # throwaways; resolving per step would allocate on the hot path).
        self._slo_workflows_total = obs.windowed_counter("slo.workflows.total")
        self._slo_workflows_missed = obs.windowed_counter("slo.workflows.missed")
        self._slo_decide_seconds = obs.windowed_histogram("slo.decide.seconds")

    # -- registration -------------------------------------------------------------

    def add_workflow(
        self, workflow: Workflow, *, request_id: str | None = None
    ) -> None:
        """Register a workflow; it arrives at ``max(start_slot, now)``.

        Raises ``ValueError`` on duplicate ids or jobs that cannot fit the
        cluster (workload validation happens at registration so a bad
        submission is rejected before it can poison the run).  When
        *request_id* is given, every trace event the engine later emits
        for this workflow or its jobs is stamped with it.
        """
        if workflow.workflow_id in self.workflows:
            raise ValueError(f"duplicate workflow {workflow.workflow_id}")
        for job in workflow.jobs:
            if job.job_id in self._runs:
                raise ValueError(f"duplicate job id {job.job_id}")
            self._validate_job(job)
        arrival = max(workflow.start_slot, self.slot)
        self.workflows[workflow.workflow_id] = workflow
        self._workflow_arrival[workflow.workflow_id] = arrival
        self._workflow_completion[workflow.workflow_id] = None
        self._workflow_remaining[workflow.workflow_id] = len(workflow)
        for job in workflow.jobs:
            self._runs[job.job_id] = JobRun(
                job,
                arrival_slot=arrival,
                unmet_parents=len(workflow.parents_of(job.job_id)),
            )
        self._remaining_jobs += len(workflow)
        if request_id is not None:
            self._request_ids[workflow.workflow_id] = request_id
            for job in workflow.jobs:
                self._request_ids[job.job_id] = request_id

    def add_adhoc(self, job: Job, *, request_id: str | None = None) -> None:
        """Register an ad-hoc job; it arrives at ``max(arrival_slot, now)``."""
        if job.kind is not JobKind.ADHOC:
            raise ValueError(f"job {job.job_id} in adhoc_jobs is not ADHOC")
        if job.job_id in self._runs:
            raise ValueError(f"duplicate job id {job.job_id}")
        self._validate_job(job)
        self._runs[job.job_id] = JobRun(
            job, arrival_slot=max(job.arrival_slot, self.slot), unmet_parents=0
        )
        self._remaining_jobs += 1
        self._live_adhoc += 1
        if request_id is not None:
            self._request_ids[job.job_id] = request_id

    def remove_workflow(self, workflow_id: str) -> Workflow:
        """Withdraw a registered workflow that has not started executing.

        Shard migration support: a workflow moves to another shard only
        while it is still pure bookkeeping here — no job has executed a
        single task-slot and none completed.  Raises ``ValueError`` when
        the workflow is unknown or has started (a started workflow's
        progress lives only in this engine and must not be abandoned).

        A :class:`~repro.model.events.WorkflowWithdrawn` event is queued
        for the next step, so the scheduler drops any plan capacity it was
        still reserving for the withdrawn jobs.
        """
        workflow = self.workflows.get(workflow_id)
        if workflow is None:
            raise ValueError(f"unknown workflow {workflow_id}")
        for job in workflow.jobs:
            run = self._runs[job.job_id]
            if run.executed_units > 0 or run.done:
                raise ValueError(
                    f"workflow {workflow_id} has started (job {job.job_id}); "
                    "not withdrawable"
                )
        del self.workflows[workflow_id]
        del self._workflow_arrival[workflow_id]
        del self._workflow_completion[workflow_id]
        del self._workflow_remaining[workflow_id]
        self._request_ids.pop(workflow_id, None)
        for job in workflow.jobs:
            del self._runs[job.job_id]
            self._request_ids.pop(job.job_id, None)
        self._remaining_jobs -= len(workflow)
        self._pending_events.append(
            WorkflowWithdrawn(slot=self.slot, workflow_id=workflow_id)
        )
        return workflow

    def workflow_ids(self) -> list[str]:
        """Ids of every registered (not withdrawn) workflow."""
        return list(self.workflows)

    def workflow_started(self, workflow_id: str) -> bool:
        """True when any job of the workflow executed or completed."""
        workflow = self.workflows[workflow_id]
        return any(
            self._runs[job.job_id].executed_units > 0
            or self._runs[job.job_id].done
            for job in workflow.jobs
        )

    def validate_job(self, job: Job) -> None:
        """Raise ``ValueError`` when one of *job*'s tasks cannot fit the
        cluster (or any node of the node-level topology)."""
        self._validate_job(job)

    def _validate_job(self, job: Job) -> None:
        base = self.cluster.base
        nodes = self.config.node_cluster
        for spec in (job.tasks, job.execution_tasks):
            if not spec.demand.fits_in(base):
                raise ValueError(
                    f"job {job.job_id}: one task does not fit the cluster"
                )
            if nodes is not None and not any(
                spec.demand.fits_in(node) for node in nodes.nodes
            ):
                raise ValueError(
                    f"job {job.job_id}: one task does not fit any node"
                )

    def validate_cluster(self) -> None:
        base = self.cluster.base
        nodes = self.config.node_cluster
        if nodes is not None and not base.fits_in(nodes.aggregate()):
            raise ValueError(
                "aggregate cluster capacity exceeds the node cluster's total"
            )

    # -- introspection ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when every registered job has completed."""
        return self._remaining_jobs == 0

    @property
    def n_jobs(self) -> int:
        return len(self._runs)

    @property
    def remaining_jobs(self) -> int:
        return self._remaining_jobs

    def live_adhoc_count(self) -> int:
        """Ad-hoc jobs registered but not yet completed (queue depth).

        O(1): the service reads this on every slot (queue-depth gauge,
        shed decisions) and during drain — a full scan of ``_runs`` per
        slot made an *empty* queue cost O(jobs) per step.  The counter
        is maintained at registration and completion instead.
        """
        return self._live_adhoc

    def job_run(self, job_id: str) -> JobRun:
        return self._runs[job_id]

    def job_runs(self):
        """All registered job runs (including not-yet-arrived ones)."""
        return self._runs.values()

    def has_job(self, job_id: str) -> bool:
        return job_id in self._runs

    # -- views -------------------------------------------------------------------

    def view(self, slot: int | None = None) -> ClusterView:
        slot = self.slot if slot is None else slot
        deadline_views = []
        adhoc_views = []
        for run in self._runs.values():
            job = run.job
            if run.arrival_slot > slot:
                continue  # not submitted/arrived yet
            if job.kind is JobKind.DEADLINE:
                deadline_views.append(
                    DeadlineJobView(
                        job_id=job.job_id,
                        workflow_id=job.workflow_id or "",
                        arrival_slot=run.arrival_slot,
                        ready=run.ready_at(slot),
                        completed=run.done,
                        est_spec=job.tasks,
                        executed_units=run.executed_units,
                        believed_remaining_units=run.believed_remaining_units(),
                    )
                )
            else:
                # Ad-hoc jobs expose only their *outstanding container
                # requests* (at most one per task), never their total size.
                pending = min(
                    job.execution_tasks.count, run.true_remaining_units
                )
                adhoc_views.append(
                    AdhocJobView(
                        job_id=job.job_id,
                        arrival_slot=run.arrival_slot,
                        unit_demand=job.execution_tasks.demand,
                        pending_units=pending,
                        completed=run.done,
                    )
                )
        visible_workflows = {
            wid: wf
            for wid, wf in self.workflows.items()
            if self._workflow_arrival[wid] <= slot
        }
        return ClusterView(
            slot=slot,
            capacity=self.cluster,
            deadline_jobs=tuple(deadline_views),
            adhoc_jobs=tuple(adhoc_views),
            workflows=visible_workflows,
        )

    # -- stepping ------------------------------------------------------------------

    def schedule_drain(self, deadline_slot: int) -> None:
        """Advisory drain cap; a no-op on the slot-stepped core.

        The event-driven core (:class:`repro.simulator.events.
        EventEngineCore`) overrides this so fast-forward never coasts
        past the graceful-drain deadline.
        """

    def step(self) -> StepOutcome:
        """Execute one slot: events -> decide -> execute -> completions."""
        config = self.config
        obs = self.obs
        tracing = obs.tracing
        slot = self.slot
        slot_span = obs.span("sim.slot")
        slot_span.__enter__()
        events = self._pending_events
        self._pending_events = []

        # Arrivals at this slot.
        for workflow in self.workflows.values():
            if self._workflow_arrival[workflow.workflow_id] == slot:
                events.append(
                    WorkflowArrived(slot=slot, workflow_id=workflow.workflow_id)
                )
                for job_id in workflow.roots():
                    run = self._runs[job_id]
                    run.ready_slot = slot
                    events.append(
                        JobReady(
                            slot=slot,
                            job_id=job_id,
                            workflow_id=workflow.workflow_id,
                        )
                    )
        for run in self._runs.values():
            if run.job.kind is JobKind.ADHOC and run.arrival_slot == slot:
                run.ready_slot = slot
                events.append(JobArrived(slot=slot, job_id=run.job.job_id))

        if tracing:
            self.trace_events(events)

        view = self.view(slot)
        start = time.perf_counter()
        if events:
            self.scheduler.on_events(events, view)
        assignment = self._decide(view)
        decide_seconds = time.perf_counter() - start
        self._planning_seconds += decide_seconds
        self._planning_calls += 1
        self._slo_decide_seconds.observe(decide_seconds)

        usage, granted, completions, executed = self._execute(
            slot, assignment, view
        )
        resources = self.cluster.resources
        self._usage_rows.append([usage[r] for r in resources])
        self._granted_rows.append([granted[r] for r in resources])
        if self._record_execution:
            self._execution_rows.append(executed)
        if self.verifier is not None:
            self.verifier.check_slot(slot, executed, completions, self._runs)

        if tracing:
            request_ids = self._request_ids
            for job_id, units in executed.items():
                obs.event(
                    "task_placement",
                    slot=slot,
                    job_id=job_id,
                    units=units,
                    **_stamp(request_ids.get(job_id)),
                )
            # Preemption at a slot boundary: a job that ran last slot,
            # is still unfinished, and received nothing this slot.
            running = set(executed)
            # Sorted so traces are byte-stable across processes (set
            # order varies with the interpreter's hash seed; the golden
            # corpus diffs traces exactly).
            for job_id in sorted(self._prev_running - running):
                if not self._runs[job_id].done:
                    obs.event(
                        "job_preempted",
                        slot=slot,
                        job_id=job_id,
                        **_stamp(request_ids.get(job_id)),
                    )
            self._prev_running = running

        # Failure injection: jobs that ran but did not complete may lose
        # progress (a crashed container redoes work).  Completed jobs
        # are safe — their outputs are materialised.
        if self._failure_rng is not None:
            done = set(completions)
            for job_id in executed:
                if job_id in done:
                    continue
                run = self._runs[job_id]
                lost = config.failures.roll(self._failure_rng, run.executed_units)
                if lost > 0:
                    run.executed_units -= lost
                    self._pending_events.append(
                        JobSetback(
                            slot=slot + 1,
                            job_id=job_id,
                            lost_units=lost,
                            workflow_id=run.job.workflow_id,
                        )
                    )

        # Completions propagate readiness and workflow completion events
        # delivered at the start of the next slot.
        for job_id in completions:
            run = self._runs[job_id]
            if run.job.kind is JobKind.ADHOC:
                self._live_adhoc -= 1
            workflow_id = run.job.workflow_id
            self._pending_events.append(
                JobCompleted(slot=slot + 1, job_id=job_id, workflow_id=workflow_id)
            )
            if workflow_id is not None:
                workflow = self.workflows[workflow_id]
                self._workflow_remaining[workflow_id] -= 1
                if self._workflow_remaining[workflow_id] == 0:
                    self._workflow_completion[workflow_id] = slot
                    self._pending_events.append(
                        WorkflowCompleted(slot=slot + 1, workflow_id=workflow_id)
                    )
                    missed = slot >= workflow.deadline_slot
                    self._slo_workflows_total.inc()
                    if missed:
                        self._slo_workflows_missed.inc()
                    if tracing and missed:
                        obs.event(
                            "workflow_deadline_miss",
                            slot=slot,
                            workflow_id=workflow_id,
                            deadline_slot=workflow.deadline_slot,
                            **_stamp(self._request_ids.get(workflow_id)),
                        )
                for child in workflow.dependents_of(job_id):
                    child_run = self._runs[child]
                    child_run.unmet_parents -= 1
                    if child_run.unmet_parents == 0:
                        child_run.ready_slot = slot + 1
                        self._pending_events.append(
                            JobReady(
                                slot=slot + 1,
                                job_id=child,
                                workflow_id=workflow_id,
                            )
                        )
        self._remaining_jobs -= len(completions)
        self.slot = slot + 1
        slot_span.__exit__(None, None, None)
        if slot_span.elapsed > self._slowest[0]:
            self._slowest = (slot_span.elapsed, slot, decide_seconds)
        return StepOutcome(
            slot=slot,
            events=events,
            completions=completions,
            executed=executed,
            decide_seconds=decide_seconds,
        )

    def flush_pending_events(self) -> None:
        """Deliver any final events (completions from the last executed slot)
        to the scheduler without asking for more work."""
        if not self._pending_events:
            return
        pending, self._pending_events = self._pending_events, []
        if self.obs.tracing:
            self.trace_events(pending)
        self.scheduler.on_events(pending, self.view(self.slot))

    def trace_events(self, events: list[Event]) -> None:
        """Mirror engine events into the trace (types match EventKind values).

        Events are stamped with the originating submission's request id
        when the entity was registered with one.
        """
        obs = self.obs
        request_ids = self._request_ids
        for event in events:
            fields = {
                key: value
                for key, value in vars(event).items()
                if key != "slot" and value is not None
            }
            request_id = request_ids.get(
                getattr(event, "job_id", None) or ""
            ) or request_ids.get(getattr(event, "workflow_id", None) or "")
            if request_id is not None:
                fields["request_id"] = request_id
            obs.event(event.kind.value, slot=event.slot, **fields)

    def _execute(
        self, slot: int, assignment, view: ClusterView
    ) -> tuple[ResourceVector, ResourceVector, list[str], dict[str, int]]:
        """Run one slot of granted work.

        Returns (used, granted, completions, executed-units-per-job).
        """
        capacity = self.cluster.at(slot)
        granted_total = ResourceVector()
        used_total = ResourceVector()
        completions: list[str] = []
        executed: dict[str, int] = {}

        # Pass 1: validate grants and derive how many *true* tasks the
        # granted resources can host per job.
        runnable: list[tuple[str, int]] = []  # (job_id, desired true tasks)
        for job_id, units in assignment.items():
            if units <= 0:
                continue
            run = self._runs.get(job_id)
            if run is None:
                raise ValueError(f"scheduler granted unknown job {job_id!r}")
            if run.done or not run.ready_at(slot):
                if self.config.strict:
                    raise ValueError(
                        f"scheduler granted units to job {job_id!r} which is "
                        f"{'done' if run.done else 'not ready'} at slot {slot}"
                    )
                continue
            believed_demand = run.job.tasks.demand
            grant_vec = believed_demand * int(units)
            granted_total = granted_total + grant_vec

            # Execution uses the *true* structure: the engine runs as many
            # true task-slots as the granted resources can host.
            true_spec = run.job.execution_tasks
            tasks_run = min(
                true_spec.demand.units_fitting(grant_vec),
                true_spec.count,
                run.true_remaining_units,
            )
            if tasks_run > 0:
                runnable.append((job_id, tasks_run))

        # Node-level placement: tasks must also pack onto machines; units
        # lost to fragmentation simply do not run this slot.
        if self.config.node_cluster is not None and runnable:
            pack = self.config.node_cluster.pack(
                [
                    (job_id, self._runs[job_id].job.execution_tasks.demand, tasks)
                    for job_id, tasks in runnable
                ]
            )
            self._fragmentation_waste += pack.total_unplaced
            runnable = [
                (job_id, pack.placed.get(job_id, 0)) for job_id, _ in runnable
            ]

        # Pass 2: execute.
        for job_id, tasks_run in runnable:
            if tasks_run <= 0:
                continue
            run = self._runs[job_id]
            true_spec = run.job.execution_tasks
            run.executed_units += tasks_run
            executed[job_id] = tasks_run
            used_total = used_total + true_spec.demand * tasks_run
            if run.true_remaining_units == 0:
                run.completion_slot = slot
                completions.append(job_id)

        if not granted_total.fits_in(capacity):
            if self.config.strict:
                raise ValueError(
                    f"slot {slot}: scheduler granted {dict(granted_total)} "
                    f"exceeding capacity {dict(capacity)}"
                )
        return used_total, granted_total, completions, executed

    # -- results -----------------------------------------------------------------

    def finalize_metrics(self) -> None:
        """Mirror end-of-run state into gauges (slowest slot, plan cache)."""
        obs = self.obs
        if self._slowest[1] >= 0:
            obs.gauge("sim.slowest_slot").set(self._slowest[1])
            obs.gauge("sim.slowest_slot_seconds").set(self._slowest[0])
            obs.gauge("sim.slowest_slot_decide_seconds").set(self._slowest[2])
        # Planner-owning schedulers (duck-typed: scheduler.planner.plan_cache)
        # get their end-of-run cache state mirrored into the metrics, so
        # SimulationResult.metrics carries the steady-state hit rate without
        # callers reaching into scheduler internals.
        cache = getattr(getattr(self.scheduler, "planner", None), "plan_cache", None)
        if cache is not None:
            obs.gauge("sched.plan.cache.entries").set(len(cache))
            obs.gauge("sched.plan.cache.hit_rate").set(cache.hit_rate)

    def result(self, finished: bool | None = None) -> SimulationResult:
        """Snapshot the run as the batch simulator's result object."""
        resources = self.cluster.resources
        jobs = {
            job_id: JobRecord(
                job_id=job_id,
                kind=run.job.kind,
                workflow_id=run.job.workflow_id,
                arrival_slot=run.arrival_slot,
                ready_slot=run.ready_slot,
                completion_slot=run.completion_slot,
                true_units=run.true_total_units,
                est_units=run.job.tasks.total_task_slots,
            )
            for job_id, run in self._runs.items()
        }
        workflow_records = {
            wid: WorkflowRecord(
                workflow_id=wid,
                start_slot=self._workflow_arrival[wid],
                deadline_slot=wf.deadline_slot,
                completion_slot=self._workflow_completion[wid],
            )
            for wid, wf in self.workflows.items()
        }
        usage_rows = self._usage_rows
        granted_rows = self._granted_rows
        shape = (max(len(usage_rows), 1), len(resources))
        usage = np.zeros(shape)
        granted = np.zeros(shape)
        if usage_rows:
            usage[: len(usage_rows)] = np.asarray(usage_rows)
            granted[: len(granted_rows)] = np.asarray(granted_rows)
        return SimulationResult(
            slot_seconds=self.config.slot_seconds,
            n_slots=self.slot,
            finished=self.finished if finished is None else finished,
            jobs=jobs,
            workflows=workflow_records,
            usage=usage,
            granted=granted,
            resources=resources,
            scheduler_name=getattr(self.scheduler, "name", ""),
            planning_calls=self._planning_calls,
            planning_seconds=self._planning_seconds,
            execution=tuple(self._execution_rows),
            fragmentation_waste_units=self._fragmentation_waste,
            metrics=self.obs.registry.snapshot(),
        )

    # -- run lifecycle logging ------------------------------------------------------

    def emit_run_start(self) -> None:
        self.obs.event(
            "run_start",
            scheduler=getattr(self.scheduler, "name", ""),
            n_jobs=len(self._runs),
            n_workflows=len(self.workflows),
            slot_seconds=self.config.slot_seconds,
        )
        self.obs.log(
            logging.INFO,
            "simulation start: %d jobs, %d workflows, scheduler=%s",
            len(self._runs), len(self.workflows),
            getattr(self.scheduler, "name", ""),
        )

    def emit_run_end(self, finished: bool) -> None:
        self.obs.event("run_end", n_slots=self.slot, finished=finished)
        self.obs.log(
            logging.INFO,
            "simulation end: %d slots, finished=%s", self.slot, finished,
        )
