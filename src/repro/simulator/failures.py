"""Failure injection.

Real clusters lose containers: a node reboots, a task is preempted by a
higher-priority tenant, an executor OOMs.  In the slot/work-unit model this
appears as a *progress setback* — some executed task-slots must be redone
(work since the last materialised output is lost).  Schedulers observe the
setback only through the job's grown remaining work (and a
:class:`~repro.model.events.JobSetback` event so planners re-plan), which is
exactly the robustness surface the paper's dynamic re-planning claims to
cover for estimation errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FailureModel:
    """Per-slot random progress setbacks.

    Attributes:
        setback_prob: probability that a job which executed work this slot
            suffers a failure at the end of it (independent per job/slot).
        max_setback_units: a failure destroys 1..max_setback_units of the
            job's executed task-slots (uniform), never more than it has.
        seed: RNG seed — failures are deterministic per simulation.
    """

    setback_prob: float = 0.0
    max_setback_units: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.setback_prob <= 1.0:
            raise ValueError("setback_prob must be in [0, 1]")
        if self.max_setback_units < 1:
            raise ValueError("max_setback_units must be >= 1")

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def roll(self, rng: np.random.Generator, executed_units: int) -> int:
        """Units of progress lost by one job this slot (0 = no failure)."""
        if self.setback_prob <= 0.0 or executed_units <= 0:
            return 0
        if rng.random() >= self.setback_prob:
            return 0
        lost = int(rng.integers(1, self.max_setback_units + 1))
        return min(lost, executed_units)
