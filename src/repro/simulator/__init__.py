"""Slot-based cluster simulator.

The paper evaluated on an 80-node YARN deployment plus trace-driven
simulations; this package is the simulated substrate.  Time advances in
integral slots (the LP of Sec. V is slot-indexed; the deployment used 10 s
slots).  Each slot the engine (1) delivers events (arrivals, readiness,
completions) to the scheduler, (2) asks it for a resource assignment,
(3) validates the assignment against capacity, (4) executes tasks —
preemptible at slot boundaries with retained progress — and (5) records
metrics.

Schedulers only see :class:`~repro.simulator.view.ClusterView`, which hides
ad-hoc job sizes (they are best-effort and unknown at submission, Sec. II-A)
and exposes *estimated* structure for deadline jobs so estimation-error
experiments behave like the real system.
"""

from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.events import EventEngineCore, EventQueue, SimEvent
from repro.simulator.failures import FailureModel
from repro.simulator.runtime import EngineCore, StepOutcome, make_engine_core
from repro.simulator.nodes import NodeCluster, PackResult
from repro.simulator.metrics import (
    adhoc_turnaround_seconds,
    deadline_deltas_seconds,
    missed_jobs,
    missed_workflows,
    utilization_timeline,
)
from repro.simulator.result import JobRecord, SimulationResult, WorkflowRecord
from repro.simulator.view import AdhocJobView, ClusterView, DeadlineJobView

__all__ = [
    "AdhocJobView",
    "ClusterView",
    "DeadlineJobView",
    "EngineCore",
    "EventEngineCore",
    "EventQueue",
    "FailureModel",
    "JobRecord",
    "SimEvent",
    "NodeCluster",
    "PackResult",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "StepOutcome",
    "WorkflowRecord",
    "adhoc_turnaround_seconds",
    "make_engine_core",
    "deadline_deltas_seconds",
    "missed_jobs",
    "missed_workflows",
    "utilization_timeline",
]
