"""Simulation outputs: per-job and per-workflow records plus usage traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.model.job import JobKind


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle of one job as observed by the engine.

    Completion happens at the *end* of ``completion_slot``; a job meets a
    deadline ``d`` iff ``completion_slot < d`` (slot indices, deadline
    exclusive).  ``completion_slot`` is None when the simulation ended first.
    """

    job_id: str
    kind: JobKind
    workflow_id: Optional[str]
    arrival_slot: int
    ready_slot: Optional[int]
    completion_slot: Optional[int]
    true_units: int
    est_units: int

    @property
    def completed(self) -> bool:
        return self.completion_slot is not None

    def turnaround_slots(self) -> Optional[int]:
        if self.completion_slot is None:
            return None
        return self.completion_slot + 1 - self.arrival_slot


@dataclass(frozen=True)
class WorkflowRecord:
    workflow_id: str
    start_slot: int
    deadline_slot: int
    completion_slot: Optional[int]

    @property
    def met_deadline(self) -> Optional[bool]:
        if self.completion_slot is None:
            return None
        return self.completion_slot < self.deadline_slot


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    Attributes:
        slot_seconds: wall-clock length of one slot.
        n_slots: number of slots simulated.
        finished: True when all jobs completed before ``max_slots``.
        jobs: per-job records.
        workflows: per-workflow records.
        usage: ``[n_slots, n_resources]`` resources actually consumed.
        granted: same shape; resources granted by the scheduler (the gap to
            ``usage`` is waste from over-granting or unready jobs).
        resources: resource-name order of the usage columns.
    """

    slot_seconds: float
    n_slots: int
    finished: bool
    jobs: Mapping[str, JobRecord]
    workflows: Mapping[str, WorkflowRecord]
    usage: np.ndarray
    granted: np.ndarray
    resources: tuple[str, ...]
    scheduler_name: str = ""
    planning_calls: int = 0
    planning_seconds: float = 0.0
    #: Per-slot executed task units per job (only when the simulation ran
    #: with ``record_execution=True``; empty otherwise).
    execution: tuple = ()
    #: Granted task units that failed node-level placement over the whole
    #: run (0 unless the simulation had a ``node_cluster``).
    fragmentation_waste_units: int = 0
    #: Snapshot of the run's observability registry (phase timing
    #: histograms like ``sim.slot``/``sched.decide``, counters, gauges) —
    #: see :meth:`repro.obs.MetricsRegistry.snapshot` for the shape.
    metrics: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    #: The :class:`repro.verify.VerificationReport` of a ``verify=True``
    #: run (None otherwise; typed loosely because the verify package
    #: depends on this module).
    verification: object | None = None

    def phase_stats(self, name: str) -> Optional[Mapping[str, float]]:
        """Timing-histogram snapshot of one phase (``None`` if unrecorded)."""
        stats = self.metrics.get(name)
        if stats is None or stats.get("type") != "histogram":
            return None
        return stats

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """One counter's or gauge's recorded value (``default`` if absent)."""
        stats = self.metrics.get(name)
        if stats is None or stats.get("type") not in ("counter", "gauge"):
            return default
        return float(stats.get("value", default))

    def seconds(self, slots: int) -> float:
        return slots * self.slot_seconds

    def jobs_of_kind(self, kind: JobKind) -> list[JobRecord]:
        return [rec for rec in self.jobs.values() if rec.kind is kind]
