"""repro: a full reproduction of FlowTime (Hu et al., ICDCS 2018).

FlowTime jointly schedules deadline-aware *workflows* (DAGs of recurring
data-analytics jobs) and best-effort *ad-hoc* jobs on one multi-resource
cluster: workflow deadlines are decomposed into per-job deadlines using the
DAG and per-job resource demands (Sec. IV), and a lexicographic-minimax LP
places the deadline work so that its resource skyline is as flat as possible
(Sec. V) — everything left over serves ad-hoc jobs immediately.

Quick start::

    from repro import (
        ClusterCapacity, FlowTimeScheduler, Simulation, generate_trace,
    )

    cluster = ClusterCapacity.uniform(cpu=500, mem=1024)
    trace = generate_trace(capacity=cluster, seed=7)
    sim = Simulation(
        cluster, FlowTimeScheduler(),
        workflows=trace.workflows, adhoc_jobs=trace.adhoc_jobs,
    )
    result = sim.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure.
"""

from repro.analysis import (
    ComparisonResult,
    canonical_windows,
    format_comparison_table,
    run_comparison,
    run_one,
)
from repro.analysis.gantt import render_gantt, render_utilization
from repro.core import (
    AllocationPlan,
    DecompositionResult,
    FlowTimePlanner,
    JobDemand,
    JobWindow,
    PlanCache,
    PlannerConfig,
    PlanRequest,
    critical_path_windows,
    decompose_deadline,
    grouped_topological_sets,
    lexmin_schedule,
)
from repro.estimation import ErrorModel, RunHistory, apply_estimation_errors
from repro.model import (
    CPU,
    MEM,
    ClusterCapacity,
    Job,
    JobKind,
    ResourceVector,
    TaskSpec,
    Workflow,
)
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Observability,
    current_obs,
    read_trace,
    use_obs,
)
from repro.schedulers import (
    CoraScheduler,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    FlowTimeScheduler,
    MorpheusScheduler,
    make_scheduler,
)
from repro.service import (
    SchedulerService,
    ServiceConfig,
    ServiceStatus,
    SubmitResult,
)
from repro.simulator import Simulation, SimulationConfig, SimulationResult
from repro.workloads import (
    SyntheticTrace,
    adhoc_stream,
    fork_join_workflow,
    generate_trace,
    make_scientific_workflow,
)
from repro.workloads.recurring import RecurringWorkflow, record_run

__version__ = "1.10.0"

__all__ = [
    "CPU",
    "MEM",
    "AllocationPlan",
    "ClusterCapacity",
    "ComparisonResult",
    "CoraScheduler",
    "DecompositionResult",
    "EdfScheduler",
    "ErrorModel",
    "FairScheduler",
    "FifoScheduler",
    "FlowTimePlanner",
    "FlowTimeScheduler",
    "Job",
    "JobDemand",
    "JobKind",
    "JobWindow",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MorpheusScheduler",
    "Observability",
    "PlanCache",
    "PlanRequest",
    "PlannerConfig",
    "RecurringWorkflow",
    "ResourceVector",
    "RunHistory",
    "SchedulerService",
    "ServiceConfig",
    "ServiceStatus",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SubmitResult",
    "SyntheticTrace",
    "TaskSpec",
    "Workflow",
    "adhoc_stream",
    "apply_estimation_errors",
    "canonical_windows",
    "critical_path_windows",
    "current_obs",
    "decompose_deadline",
    "fork_join_workflow",
    "format_comparison_table",
    "generate_trace",
    "grouped_topological_sets",
    "lexmin_schedule",
    "make_scheduler",
    "make_scientific_workflow",
    "read_trace",
    "record_run",
    "render_gantt",
    "render_utilization",
    "run_comparison",
    "run_one",
    "use_obs",
]
