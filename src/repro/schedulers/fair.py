"""FAIR baseline: max-min fair sharing across all active jobs.

Models YARN's Fair Scheduler at the granularity our simulator exposes: every
runnable job (deadline or ad-hoc) repeatedly receives one task unit in
round-robin order until nothing more fits — progressive filling, which
converges to max-min fairness in task units.  With ``drf=True`` the filling
order follows Dominant Resource Fairness instead: each round serves the job
whose granted dominant share is currently smallest, which equalises shares
across heterogeneous task shapes (big-memory vs big-CPU tasks) the way
DRF-configured YARN queues do.

Deadlines are ignored either way, which is why Fair misses many of them
(Fig. 4b: 8 jobs), but ad-hoc jobs are never starved, giving Fair the best
baseline turnaround (Fig. 4c).
"""

from __future__ import annotations

from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView, fit_units


class FairScheduler(Scheduler):
    """Progressive-filling max-min fair share over runnable jobs."""

    name = "Fair"

    def __init__(self, *, drf: bool = False):
        self.drf = drf

    def assign(self, view: ClusterView) -> Assignment:
        leftover = view.capacity_now()
        capacity = view.capacity_now()
        grants: dict[str, int] = {}
        # (job_id, unit demand, max more units it can take, dominant share
        # granted so far)
        active: list[list] = []
        for job in view.runnable_deadline_jobs():
            room = min(job.believed_remaining_units, job.max_parallel)
            if room:
                active.append([job.job_id, job.unit_demand, room, 0.0])
        for job in view.waiting_adhoc_jobs():
            if job.pending_units:
                active.append([job.job_id, job.unit_demand, job.pending_units, 0.0])
        active.sort(key=lambda item: item[0])

        if not self.drf:
            progress = True
            while progress:
                progress = False
                for item in active:
                    job_id, demand, room, _share = item
                    if room <= 0:
                        continue
                    if fit_units(leftover, demand, 1):
                        grants[job_id] = grants.get(job_id, 0) + 1
                        item[2] -= 1
                        leftover = leftover.saturating_sub(demand)
                        progress = True
            return grants

        # DRF progressive filling: serve the job with the smallest granted
        # dominant share that can still receive a unit.
        while True:
            best = None
            for item in active:
                job_id, demand, room, share = item
                if room <= 0 or not fit_units(leftover, demand, 1):
                    continue
                if best is None or share < best[3]:
                    best = item
            if best is None:
                return grants
            job_id, demand, _room, _share = best
            grants[job_id] = grants.get(job_id, 0) + 1
            best[2] -= 1
            best[3] += demand.dominant_share(capacity)
            leftover = leftover.saturating_sub(demand)
