"""FIFO baseline: one queue ordered by submission time, deadline-oblivious.

This is the paper's worst performer on deadline metrics (Fig. 4b shows 13
missed jobs): workflow jobs and ad-hoc jobs compete in pure submission
order, and a long-running early job starves everything behind it.
"""

from __future__ import annotations

from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView


class FifoScheduler(Scheduler):
    """Greedy first-in-first-out over all runnable jobs."""

    name = "FIFO"

    def assign(self, view: ClusterView) -> Assignment:
        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        queue: list[tuple[int, int, str]] = []
        # (submission slot, tie-break class, job id); deadline jobs enqueue at
        # their workflow's submission, ad-hoc jobs at their own arrival.
        for job in view.runnable_deadline_jobs():
            queue.append((job.arrival_slot, 0, job.job_id))
        for job in view.waiting_adhoc_jobs():
            queue.append((job.arrival_slot, 1, job.job_id))
        queue.sort()
        for _, klass, job_id in queue:
            if klass == 0:
                job = view.deadline_job(job_id)
                units = self.grant_deadline_job(job, leftover)
                demand = job.unit_demand
            else:
                job = next(
                    j for j in view.adhoc_jobs if j.job_id == job_id
                )
                units = self.grant_adhoc_job(job, leftover)
                demand = job.unit_demand
            if units:
                grants[job_id] = units
                leftover = leftover.saturating_sub(demand * units)
        return grants
