"""TetriSched-style baseline (Tumanov et al., EuroSys 2016; the paper's [6]).

TetriSched performs "global rescheduling with adaptive plan-ahead": at every
scheduling event it re-solves the placement of *all* pending jobs over a
plan-ahead window, where each job is a rigid space-time block (a fixed
number of containers for a contiguous stretch).  Our simplified, in-spirit
reproduction keeps those two signatures:

* **rigid blocks** — a job runs at full parallelism for
  ``ceil(units / max_parallel)`` consecutive slots (contrast FlowTime's
  malleable LP allocation);
* **global re-packing** — on every deadline event all unfinished jobs are
  re-placed, earliest-deadline first, each at the earliest start whose
  block fits the residual capacity skyline.

Jobs receive the same decomposed per-job deadlines the other baselines get
(Sec. VII-A fair-comparison setup); blocks that cannot meet their deadline
are still placed as early as possible.  Leftover capacity serves ad-hoc
jobs, and idle capacity work-conserves like the other planners.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import AllocationPlan
from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.model.events import Event, EventKind
from repro.model.resources import ResourceVector
from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView, fit_units


class TetriSchedScheduler(Scheduler):
    """Rigid space-time blocks, globally re-packed with plan-ahead."""

    name = "TetriSched"

    def __init__(self, *, plan_ahead_slots: int = 256, adhoc_policy: str = "fair"):
        if plan_ahead_slots < 4:
            raise ValueError("plan_ahead_slots must be >= 4")
        if adhoc_policy not in ("fifo", "fair"):
            raise ValueError(f"unknown ad-hoc policy {adhoc_policy!r}")
        self.plan_ahead_slots = plan_ahead_slots
        self.adhoc_policy = adhoc_policy
        self._windows: dict[str, JobWindow] = {}
        self._plan: Optional[AllocationPlan] = None
        self._needs_replan = False

    @property
    def windows(self) -> dict[str, JobWindow]:
        return dict(self._windows)

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        for event in events:
            kind = event.kind
            if kind is EventKind.WORKFLOW_ARRIVED:
                workflow = view.workflows[event.workflow_id]
                result = decompose_deadline(workflow, view.capacity)
                self._windows.update(result.windows)
                self._needs_replan = True
            elif kind in (
                EventKind.JOB_READY,
                EventKind.JOB_COMPLETED,
                EventKind.JOB_SETBACK,
            ):
                if getattr(event, "workflow_id", None) is not None:
                    self._needs_replan = True

    # -- global re-packing -----------------------------------------------------

    def _repack(self, view: ClusterView) -> AllocationPlan:
        now = view.slot
        live = [
            job for job in view.live_deadline_jobs() if job.job_id in self._windows
        ]
        resources = view.capacity.resources
        if not live:
            return AllocationPlan.empty(now, 1, resources)

        horizon = self.plan_ahead_slots
        caps = np.zeros((horizon, len(resources)))
        for k in range(horizon):
            cap = view.capacity.at(now + k)
            for r, name in enumerate(resources):
                caps[k, r] = cap[name]
        load = np.zeros_like(caps)
        grants: dict[str, np.ndarray] = {}
        unit_demands: dict[str, ResourceVector] = {}

        ordered = sorted(
            live, key=lambda j: (self._windows[j.job_id].deadline_slot, j.job_id)
        )
        for job in ordered:
            window = self._windows[job.job_id]
            release = max(window.release_slot - now, 0)
            units = job.believed_remaining_units
            demand = np.array([job.unit_demand[name] for name in resources])
            grant = np.zeros(horizon, dtype=int)
            remaining = units
            # Rigid block: full parallelism (or the widest width that fits
            # anywhere) for a contiguous stretch, placed at the earliest
            # feasible start.
            width = min(job.max_parallel, units)
            placed = False
            while width >= 1 and not placed:
                length = math.ceil(units / width)
                for start in range(release, horizon - length + 1):
                    block = load[start : start + length] + demand * width
                    if np.all(block <= caps[start : start + length] + 1e-9):
                        for k in range(length):
                            slot = start + k
                            here = min(width, remaining)
                            grant[slot] = here
                            load[slot] += demand * here
                            remaining -= here
                        placed = True
                        break
                if not placed:
                    width -= 1  # adapt: a narrower, longer block may fit
            if not placed:
                # Could not fit a rigid block inside the plan-ahead window;
                # trickle greedily wherever capacity remains.
                for slot in range(release, horizon):
                    if remaining <= 0:
                        break
                    fit = min(
                        int(
                            min(
                                (caps[slot, r] - load[slot, r]) // demand[r]
                                for r in range(len(resources))
                                if demand[r] > 0
                            )
                        ),
                        job.max_parallel,
                        remaining,
                    )
                    if fit > 0:
                        grant[slot] = fit
                        load[slot] += demand * fit
                        remaining -= fit
            grants[job.job_id] = grant
            unit_demands[job.job_id] = job.unit_demand

        return AllocationPlan(
            origin_slot=now,
            horizon=horizon,
            resources=resources,
            grants=grants,
            unit_demands=unit_demands,
        )

    # -- assignment ------------------------------------------------------------

    def assign(self, view: ClusterView) -> Assignment:
        plan = self._plan
        if (
            plan is None
            or self._needs_replan
            or view.slot >= plan.origin_slot + plan.horizon
        ):
            plan = self._plan = self._repack(view)
            self._needs_replan = False

        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        runnable = {j.job_id: j for j in view.runnable_deadline_jobs()}
        for job_id, job in sorted(runnable.items()):
            planned = plan.units_for(job_id, view.slot)
            units = min(
                planned,
                job.believed_remaining_units,
                job.max_parallel,
                fit_units(leftover, job.unit_demand, planned),
            )
            if units > 0:
                grants[job_id] = units
                leftover = leftover.saturating_sub(job.unit_demand * units)

        leftover = self.serve_adhoc(self.adhoc_policy, view, leftover, grants)

        if not leftover.is_zero():
            for job in sorted(
                runnable.values(),
                key=lambda j: self._windows.get(
                    j.job_id, JobWindow(j.job_id, 0, view.slot + 1)
                ).deadline_slot,
            ):
                already = grants.get(job.job_id, 0)
                room = min(job.believed_remaining_units, job.max_parallel) - already
                units = fit_units(leftover, job.unit_demand, room)
                if units > 0:
                    grants[job.job_id] = already + units
                    leftover = leftover.saturating_sub(job.unit_demand * units)
        return grants
