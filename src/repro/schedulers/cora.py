"""CORA baseline (Huang et al., INFOCOM 2015), adapted as in Sec. VII-A.

CORA schedules to minimise the *maximum utility* over jobs rather than to
maximise met deadlines or minimise ad-hoc turnaround — which is exactly why
the paper finds it "can only obtain a moderate performance" on both metrics.
Per the paper's fair-comparison setup we run CORA with two job classes:

* **deadline-critical** jobs (the workflow jobs, with the same decomposed
  per-job deadlines every algorithm is measured against): utility is the
  required-progress ratio — remaining work over what the job could still do
  before its deadline at full parallelism;
* **deadline-sensitive** jobs (ad-hoc): a soft-deadline utility that grows
  with waiting time.

Each slot CORA progressive-fills: repeatedly grant one task unit to the job
with the highest current utility until nothing fits — a direct greedy
realisation of minimising the max utility.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.model.events import Event, EventKind
from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView, fit_units


class CoraScheduler(Scheduler):
    """Utility-minimax progressive filling with two job classes."""

    name = "CORA"

    def __init__(self, adhoc_soft_deadline_slots: int = 30, critical_weight: float = 4.0):
        if adhoc_soft_deadline_slots < 1:
            raise ValueError("adhoc_soft_deadline_slots must be >= 1")
        self.adhoc_soft_deadline_slots = adhoc_soft_deadline_slots
        self.critical_weight = critical_weight
        self._windows: dict[str, JobWindow] = {}

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        for event in events:
            if event.kind is EventKind.WORKFLOW_ARRIVED:
                workflow = view.workflows[event.workflow_id]
                result = decompose_deadline(workflow, view.capacity)
                self._windows.update(result.windows)

    def _deadline_utility(self, job, slot: int, granted: int) -> float:
        window = self._windows.get(job.job_id)
        deadline = window.deadline_slot if window else slot + 1
        remaining = max(job.believed_remaining_units - granted, 0)
        if remaining == 0:
            return 0.0
        slack = max(deadline - slot, 1)
        capacity_left = slack * job.max_parallel
        return self.critical_weight * remaining / capacity_left

    def _adhoc_utility(self, job, slot: int, granted: int) -> float:
        remaining = max(job.pending_units - granted, 0)
        if remaining == 0:
            return 0.0
        waited = slot - job.arrival_slot + 1
        return (
            remaining
            / max(job.pending_units, 1)
            * waited
            / self.adhoc_soft_deadline_slots
        )

    def assign(self, view: ClusterView) -> Assignment:
        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        slot = view.slot

        deadline_jobs = {j.job_id: j for j in view.runnable_deadline_jobs()}
        adhoc_jobs = {j.job_id: j for j in view.waiting_adhoc_jobs()}

        while True:
            best_id = None
            best_utility = 0.0
            best_demand = None
            for job_id, job in deadline_jobs.items():
                granted = grants.get(job_id, 0)
                if granted >= min(job.believed_remaining_units, job.max_parallel):
                    continue
                if not fit_units(leftover, job.unit_demand, 1):
                    continue
                utility = self._deadline_utility(job, slot, granted)
                if utility > best_utility:
                    best_id, best_utility, best_demand = job_id, utility, job.unit_demand
            for job_id, job in adhoc_jobs.items():
                granted = grants.get(job_id, 0)
                if granted >= job.pending_units:
                    continue
                if not fit_units(leftover, job.unit_demand, 1):
                    continue
                utility = self._adhoc_utility(job, slot, granted)
                if utility > best_utility:
                    best_id, best_utility, best_demand = job_id, utility, job.unit_demand
            if best_id is None:
                break
            grants[best_id] = grants.get(best_id, 0) + 1
            leftover = leftover.saturating_sub(best_demand)
        return grants
