"""Morpheus baseline (Jyothi et al., OSDI 2016), as characterised in Sec. I.

Morpheus "infer[s] the deadlines of jobs from prior runs of workflows" but
"has not utilized global information of the entire workflow, such as how
jobs depend upon each other".  Our reproduction keeps exactly that split:

* **deadline inference** — per-job windows come from *historical
  observations only* (quantiles of start/completion offsets scaled to the
  current deadline window), never from the DAG;
* **reservation-based placement** — each job's demand is water-filled into
  its inferred window, lowest-skyline-first, one job at a time in inferred
  deadline order (a Rayon-style reservation heuristic, not a global LP);
* leftover capacity serves ad-hoc jobs FIFO.

Without history for a workflow template Morpheus falls back to evenly
spreading jobs across the window — the cold-start behaviour the real system
also has.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import AllocationPlan
from repro.core.decomposition_types import JobWindow
from repro.estimation.estimator import estimate_job_offsets, estimated_makespan
from repro.estimation.history import RunHistory, local_job_id
from repro.model.events import Event, EventKind
from repro.model.resources import ResourceVector
from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView, fit_units


class MorpheusScheduler(Scheduler):
    """History-inferred job deadlines + greedy reservation placement."""

    name = "Morpheus"

    def __init__(
        self,
        history: RunHistory | None = None,
        *,
        quantile: float = 0.95,
        work_conserving: bool = True,
        adhoc_policy: str = "fair",
    ):
        if adhoc_policy not in ("fifo", "fair"):
            raise ValueError(f"unknown ad-hoc policy {adhoc_policy!r}")
        self.history = history or RunHistory()
        self.quantile = quantile
        self.work_conserving = work_conserving
        self.adhoc_policy = adhoc_policy
        self._windows: dict[str, JobWindow] = {}
        self._plan: Optional[AllocationPlan] = None
        self._needs_replan = False

    @property
    def windows(self) -> dict[str, JobWindow]:
        return dict(self._windows)

    # -- deadline inference ----------------------------------------------------

    def _infer_windows(self, view: ClusterView, workflow_id: str) -> None:
        workflow = view.workflows[workflow_id]
        template = workflow.name or workflow.workflow_id
        window = workflow.window_slots
        # History is keyed by instance-independent local job ids (recurring
        # instances carry per-instance prefixes).
        local_of = {
            job_id: local_job_id(workflow_id, job_id)
            for job_id in workflow.job_ids
        }
        try:
            local_offsets = estimate_job_offsets(
                self.history,
                template,
                [local_of[job_id] for job_id in workflow.job_ids],
                quantile=self.quantile,
            )
            offsets = {
                job_id: local_offsets[local_of[job_id]]
                for job_id in workflow.job_ids
            }
            makespan = max(estimated_makespan(self.history, template, quantile=self.quantile), 1.0)
            scale = window / makespan
            for job_id, (start, completion) in offsets.items():
                release = workflow.start_slot + int(np.floor(start * scale))
                deadline = workflow.start_slot + int(np.ceil(completion * scale))
                deadline = min(max(deadline, release + 1), workflow.deadline_slot)
                release = min(release, deadline - 1)
                self._windows[job_id] = JobWindow(
                    job_id=job_id, release_slot=release, deadline_slot=deadline
                )
        except KeyError:
            # Cold start: no history — every job gets the whole window.
            for job_id in workflow.job_ids:
                self._windows[job_id] = JobWindow(
                    job_id=job_id,
                    release_slot=workflow.start_slot,
                    deadline_slot=workflow.deadline_slot,
                )

    # -- events -----------------------------------------------------------------

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        for event in events:
            kind = event.kind
            if kind is EventKind.WORKFLOW_ARRIVED:
                self._infer_windows(view, event.workflow_id)
                self._needs_replan = True
            elif kind in (
                EventKind.JOB_READY,
                EventKind.JOB_COMPLETED,
                EventKind.JOB_SETBACK,
            ):
                if getattr(event, "workflow_id", None) is not None:
                    self._needs_replan = True

    # -- reservation construction ----------------------------------------------------

    def _build_reservation(self, view: ClusterView) -> AllocationPlan:
        """Water-fill each live job into its inferred window, one at a time."""
        now = view.slot
        live = [
            job
            for job in view.live_deadline_jobs()
            if job.job_id in self._windows
        ]
        if not live:
            return AllocationPlan.empty(now, 1, view.capacity.resources)
        horizon = max(
            max(self._windows[j.job_id].deadline_slot for j in live) - now,
            1,
        )
        # Room for overdue work: everyone can at least drain at full rate.
        for job in live:
            need = -(-job.believed_remaining_units // job.max_parallel)
            horizon = max(horizon, need + 1)

        resources = view.capacity.resources
        caps = np.zeros((horizon, len(resources)))
        for k in range(horizon):
            cap = view.capacity.at(now + k)
            for r, name in enumerate(resources):
                caps[k, r] = cap[name]
        load = np.zeros_like(caps)
        grants: dict[str, np.ndarray] = {}
        unit_demands: dict[str, ResourceVector] = {}

        ordered = sorted(
            live, key=lambda j: (self._windows[j.job_id].deadline_slot, j.job_id)
        )
        for job in ordered:
            window = self._windows[job.job_id]
            release = max(window.release_slot - now, 0)
            deadline = max(window.deadline_slot - now, release + 1)
            grant = np.zeros(horizon, dtype=int)
            remaining = job.believed_remaining_units
            demand = [job.unit_demand[name] for name in resources]
            slots = list(range(release, min(deadline, horizon)))
            # Spill past the inferred deadline when the window cannot hold
            # the job (Morpheus reservations are best-effort too).
            spill = list(range(min(deadline, horizon), horizon))
            for candidate_slots in (slots, spill):
                while remaining > 0 and candidate_slots:
                    # Pick the slot whose max normalised load after adding one
                    # unit is smallest (lowest-skyline water filling).
                    best_slot, best_height = None, None
                    for slot in candidate_slots:
                        if grant[slot] >= job.max_parallel:
                            continue
                        if any(
                            load[slot, r] + demand[r] > caps[slot, r]
                            for r in range(len(resources))
                        ):
                            continue
                        height = max(
                            (load[slot, r] + demand[r]) / caps[slot, r]
                            for r in range(len(resources))
                            if caps[slot, r] > 0
                        )
                        if best_height is None or height < best_height:
                            best_slot, best_height = slot, height
                    if best_slot is None:
                        break
                    grant[best_slot] += 1
                    for r in range(len(resources)):
                        load[best_slot, r] += demand[r]
                    remaining -= 1
            grants[job.job_id] = grant
            unit_demands[job.job_id] = job.unit_demand

        return AllocationPlan(
            origin_slot=now,
            horizon=horizon,
            resources=resources,
            grants=grants,
            unit_demands=unit_demands,
        )

    # -- assignment ----------------------------------------------------------------

    def assign(self, view: ClusterView) -> Assignment:
        plan = self._plan
        if (
            plan is None
            or self._needs_replan
            or view.slot >= plan.origin_slot + plan.horizon
        ):
            plan = self._plan = self._build_reservation(view)
            self._needs_replan = False

        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        runnable = {j.job_id: j for j in view.runnable_deadline_jobs()}
        for job_id, job in sorted(runnable.items()):
            planned = plan.units_for(job_id, view.slot)
            units = min(
                planned,
                job.believed_remaining_units,
                job.max_parallel,
                fit_units(leftover, job.unit_demand, planned),
            )
            if units > 0:
                grants[job_id] = units
                leftover = leftover.saturating_sub(job.unit_demand * units)

        leftover = self.serve_adhoc(self.adhoc_policy, view, leftover, grants)

        if self.work_conserving and not leftover.is_zero():
            for job in sorted(
                runnable.values(),
                key=lambda j: self._windows.get(
                    j.job_id,
                    JobWindow(j.job_id, 0, view.slot + 1),
                ).deadline_slot,
            ):
                already = grants.get(job.job_id, 0)
                room = min(job.believed_remaining_units, job.max_parallel) - already
                units = fit_units(leftover, job.unit_demand, room)
                if units > 0:
                    grants[job.job_id] = already + units
                    leftover = leftover.saturating_sub(job.unit_demand * units)
        return grants
