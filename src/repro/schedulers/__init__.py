"""Schedulers: FlowTime and the paper's baselines.

All schedulers implement :class:`~repro.schedulers.base.Scheduler` and are
constructed per simulation run.  :func:`make_scheduler` builds one by name —
the names match the paper's Fig. 4 legend.
"""

from repro.schedulers.base import Assignment, Scheduler
from repro.schedulers.cora import CoraScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.schedulers.morpheus import MorpheusScheduler
from repro.schedulers.registry import (
    SCHEDULER_NAMES,
    available_schedulers,
    make_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.schedulers.tetrisched import TetriSchedScheduler

__all__ = [
    "Assignment",
    "CoraScheduler",
    "EdfScheduler",
    "FairScheduler",
    "FifoScheduler",
    "FlowTimeScheduler",
    "MorpheusScheduler",
    "SCHEDULER_NAMES",
    "Scheduler",
    "TetriSchedScheduler",
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
    "unregister_scheduler",
]
