"""EDF baseline: earliest deadline first, ad-hoc jobs only get leftovers.

This is the motivating strawman of Fig. 1 and the behaviour the paper
ascribes to reservation-style systems like Rayon [4], which "assumed that
the deadline for each job is known": jobs run in deadline order as fast as
possible, and ad-hoc work only sees what is left.  To give EDF the per-job
deadlines it assumes, it receives the same decomposed job windows every
algorithm is judged against (the paper's fair-comparison setup, Sec. VII-A).

EDF is therefore the best baseline on deadline misses (Fig. 4b: 5 of 90)
but inflates ad-hoc turnaround by an order of magnitude (Fig. 4c: ~10x
FlowTime): whenever deadline work exists it hogs the cluster, however loose
the deadlines are.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.model.events import Event, EventKind
from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView


class EdfScheduler(Scheduler):
    """Greedy earliest-job-deadline-first."""

    name = "EDF"

    def __init__(self) -> None:
        self._windows: dict[str, JobWindow] = {}

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        for event in events:
            if event.kind is EventKind.WORKFLOW_ARRIVED:
                workflow = view.workflows[event.workflow_id]
                result = decompose_deadline(workflow, view.capacity)
                self._windows.update(result.windows)

    def _deadline_of(self, view: ClusterView, job) -> int:
        window = self._windows.get(job.job_id)
        if window is not None:
            return window.deadline_slot
        return view.workflows[job.workflow_id].deadline_slot

    def assign(self, view: ClusterView) -> Assignment:
        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        ordered = sorted(
            view.runnable_deadline_jobs(),
            key=lambda job: (
                self._deadline_of(view, job),
                job.arrival_slot,
                job.job_id,
            ),
        )
        for job in ordered:
            units = self.grant_deadline_job(job, leftover)
            if units:
                grants[job.job_id] = units
                leftover = leftover.saturating_sub(job.unit_demand * units)
        self.serve_adhoc_fifo(view, leftover, grants)
        return grants
