"""Scheduler interface and shared helpers.

A scheduler is driven by the simulator: ``on_events`` delivers what changed
at the start of a slot, ``assign`` returns the slot's resource grants.
Grants are expressed in *task units* per job (a unit is one task running for
one slot, consuming the job's per-task demand vector); the engine converts
them to resources, validates capacity, and executes.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

from repro.model.events import Event
from repro.model.resources import ResourceVector
from repro.obs import current_obs
from repro.simulator.view import (
    AdhocJobView,
    ClusterView,
    DeadlineJobView,
    fit_units,
)

#: job_id -> number of task units granted this slot.
Assignment = Mapping[str, int]


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: Human-readable policy name (used in reports; Fig. 4 legend names).
    name: str = "scheduler"

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        """React to the slot's events (default: stateless, ignore them)."""

    @abc.abstractmethod
    def assign(self, view: ClusterView) -> Assignment:
        """Return this slot's task-unit grants.

        The engine validates that the implied resource usage fits capacity
        and that only ready, unfinished jobs are granted units.
        """

    def decide(self, view: ClusterView) -> Assignment:
        """``assign`` wrapped in the ``sched.decide`` observability span.

        The engine calls this instead of ``assign`` so every policy's
        per-slot decision latency lands in the same histogram (the Fig. 7
        quantity, measured from a live run instead of a microbenchmark).
        Subclasses override ``assign``, never this.
        """
        with current_obs().span("sched.decide"):
            return self.assign(view)

    # -- shared helpers for subclasses --------------------------------------------

    @staticmethod
    def grant_deadline_job(
        job: DeadlineJobView, leftover: ResourceVector, cap_units: int | None = None
    ) -> int:
        """Max units grantable to a deadline job within *leftover*."""
        wanted = min(job.believed_remaining_units, job.max_parallel)
        if cap_units is not None:
            wanted = min(wanted, cap_units)
        return fit_units(leftover, job.unit_demand, wanted)

    @staticmethod
    def grant_adhoc_job(
        job: AdhocJobView, leftover: ResourceVector, cap_units: int | None = None
    ) -> int:
        wanted = job.pending_units
        if cap_units is not None:
            wanted = min(wanted, cap_units)
        return fit_units(leftover, job.unit_demand, wanted)

    @staticmethod
    def serve_adhoc_fifo(
        view: ClusterView, leftover: ResourceVector, grants: dict[str, int]
    ) -> ResourceVector:
        """Grant leftover capacity to waiting ad-hoc jobs in FIFO order."""
        for job in view.waiting_adhoc_jobs():
            units = Scheduler.grant_adhoc_job(job, leftover)
            if units:
                grants[job.job_id] = grants.get(job.job_id, 0) + units
                leftover = leftover.saturating_sub(job.unit_demand * units)
        return leftover

    @staticmethod
    def serve_adhoc_fair(
        view: ClusterView, leftover: ResourceVector, grants: dict[str, int]
    ) -> ResourceVector:
        """Split leftover capacity across waiting ad-hoc jobs max-min
        fairly (progressive filling, one task unit per round)."""
        active = [
            [job.job_id, job.unit_demand, job.pending_units - grants.get(job.job_id, 0)]
            for job in view.waiting_adhoc_jobs()
        ]
        progress = True
        while progress:
            progress = False
            for item in active:
                job_id, demand, room = item
                if room <= 0:
                    continue
                if fit_units(leftover, demand, 1):
                    grants[job_id] = grants.get(job_id, 0) + 1
                    item[2] -= 1
                    leftover = leftover.saturating_sub(demand)
                    progress = True
        return leftover

    @staticmethod
    def serve_adhoc(
        policy: str,
        view: ClusterView,
        leftover: ResourceVector,
        grants: dict[str, int],
    ) -> ResourceVector:
        if policy == "fifo":
            return Scheduler.serve_adhoc_fifo(view, leftover, grants)
        if policy == "fair":
            return Scheduler.serve_adhoc_fair(view, leftover, grants)
        raise ValueError(f"unknown ad-hoc policy {policy!r} (use 'fifo' or 'fair')")
