"""FlowTime, wired to the simulator (the paper's full system, Sec. III-VI).

On every workflow arrival the deadlines are decomposed into per-job windows
(Sec. IV); on every event that changes the deadline-job mix (arrival,
readiness, completion) the LP planner re-solves over the remaining demands
(Sec. V/VI "triggered whenever a task/job completes").  Each slot the plan's
current column is executed for ready jobs and *all* leftover capacity goes
to ad-hoc jobs — that leftover being maximal and early is the whole point of
the lexicographic minimax objective.

Two work-conserving touches beyond the plan column (both optional):

* a ready deadline job may soak up capacity that is still idle after the
  ad-hoc queue was served (never at ad-hoc jobs' expense);
* grants are capped by believed remaining work, so estimate overruns shrink
  to a 1-unit trickle until completion (re-planning handles the rest).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.allocation import AllocationPlan
from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.core.flowtime import FlowTimePlanner, JobDemand, PlannerConfig
from repro.core.replan import PlanRequest
from repro.model.events import Event, EventKind
from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView, fit_units


class FlowTimeScheduler(Scheduler):
    """Deadline decomposition + lexmin LP planning + leftover ad-hoc serving."""

    name = "FlowTime"

    def __init__(
        self,
        planner_config: PlannerConfig | None = None,
        *,
        cluster_aware_decomposition: bool = True,
        work_conserving: bool = True,
        adhoc_policy: str = "fair",
    ):
        if adhoc_policy not in ("fifo", "fair"):
            raise ValueError(f"unknown ad-hoc policy {adhoc_policy!r}")
        self.planner = FlowTimePlanner(planner_config)
        self.cluster_aware_decomposition = cluster_aware_decomposition
        self.work_conserving = work_conserving
        self.adhoc_policy = adhoc_policy
        self._windows: dict[str, JobWindow] = {}
        self._plan: Optional[AllocationPlan] = None
        self._needs_replan = False
        self.replans = 0

    @property
    def windows(self) -> dict[str, JobWindow]:
        """Decomposed per-job windows (also the metrics ground truth)."""
        return dict(self._windows)

    @property
    def current_plan(self) -> Optional[AllocationPlan]:
        """The live allocation plan (None before the first planning round).

        Read-only duck-typed surface for frontends that expose plan state
        (the service's ``GET /plan``); plans are replaced wholesale on each
        re-plan, never mutated in place.
        """
        return self._plan

    # -- event handling -----------------------------------------------------------

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        for event in events:
            kind = event.kind
            if kind is EventKind.WORKFLOW_ARRIVED:
                workflow = view.workflows[event.workflow_id]
                result = decompose_deadline(
                    workflow,
                    view.capacity,
                    cluster_aware=self.cluster_aware_decomposition,
                )
                self._windows.update(result.windows)
                self._needs_replan = True
            elif kind in (
                EventKind.JOB_READY,
                EventKind.JOB_COMPLETED,
                EventKind.JOB_SETBACK,
            ):
                if getattr(event, "workflow_id", None) is not None:
                    self._needs_replan = True
            # Ad-hoc arrivals/completions never trigger an LP re-solve: the
            # LP only places deadline work; ad-hoc jobs take the leftovers.

    # -- planning -----------------------------------------------------------------

    def _demands(self, view: ClusterView) -> list[JobDemand]:
        demands = []
        for job in view.live_deadline_jobs():
            window = self._windows.get(job.job_id)
            if window is None:  # defensive: workflow decomposed on arrival
                continue
            demands.append(
                JobDemand(
                    job_id=job.job_id,
                    release_slot=window.release_slot,
                    deadline_slot=window.deadline_slot,
                    units=job.believed_remaining_units,
                    unit_demand=job.unit_demand,
                    max_parallel=job.max_parallel,
                )
            )
        return demands

    def _ensure_plan(self, view: ClusterView) -> AllocationPlan:
        plan = self._plan
        stale = (
            plan is None
            or self._needs_replan
            or view.slot >= plan.origin_slot + plan.horizon
        )
        if stale:
            demands = self._demands(view)
            if demands:
                request = PlanRequest(
                    now_slot=view.slot,
                    demands=tuple(demands),
                    capacity=view.capacity,
                )
                self._plan = self.planner.plan(request)
                self.replans += 1
            else:
                # No deadline work: a persistent empty plan (everything goes
                # to ad-hoc jobs) until the next deadline event.
                self._plan = AllocationPlan.empty(
                    view.slot, 2**30, view.capacity.resources
                )
            self._needs_replan = False
        return self._plan

    # -- assignment ------------------------------------------------------------------

    def assign(self, view: ClusterView) -> Assignment:
        plan = self._ensure_plan(view)
        runnable = {j.job_id: j for j in view.runnable_deadline_jobs()}

        # A job that overran its estimate generates no completion event, so
        # a stale plan could leave it starving; detecting the overrun is the
        # "task/job completes" trigger of Sec. VII-4 for the tail case.
        for job_id, job in runnable.items():
            overrun = job.executed_units >= job.est_spec.total_task_slots
            if overrun and plan.units_for(job_id, view.slot) == 0:
                self._needs_replan = True
                plan = self._ensure_plan(view)
                break

        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        for job_id, job in sorted(runnable.items()):
            planned = plan.units_for(job_id, view.slot)
            units = min(
                planned,
                job.believed_remaining_units,
                job.max_parallel,
                fit_units(leftover, job.unit_demand, planned),
            )
            if units > 0:
                grants[job_id] = units
                leftover = leftover.saturating_sub(job.unit_demand * units)

        # Everything the flattened deadline skyline does not use goes to
        # ad-hoc jobs *now* — this is how FlowTime wins Fig. 4(c).  The
        # leftover is shared max-min fairly by default (FIFO optional).
        leftover = self.serve_adhoc(self.adhoc_policy, view, leftover, grants)

        if self.work_conserving and not leftover.is_zero():
            ordered = sorted(
                runnable.values(),
                key=lambda j: (
                    self._windows[j.job_id].deadline_slot
                    if j.job_id in self._windows
                    else view.slot,
                    j.job_id,
                ),
            )
            for job in ordered:
                already = grants.get(job.job_id, 0)
                room = min(job.believed_remaining_units, job.max_parallel) - already
                units = fit_units(leftover, job.unit_demand, room)
                if units > 0:
                    grants[job.job_id] = already + units
                    leftover = leftover.saturating_sub(job.unit_demand * units)
        return grants
