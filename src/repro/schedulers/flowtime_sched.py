"""FlowTime, wired to the simulator (the paper's full system, Sec. III-VI).

On every workflow arrival the deadlines are decomposed into per-job windows
(Sec. IV); on every event that changes the deadline-job mix (arrival,
readiness, completion) the LP planner re-solves over the remaining demands
(Sec. V/VI "triggered whenever a task/job completes").  Each slot the plan's
current column is executed for ready jobs and *all* leftover capacity goes
to ad-hoc jobs — that leftover being maximal and early is the whole point of
the lexicographic minimax objective.

Two work-conserving touches beyond the plan column (both optional):

* a ready deadline job may soak up capacity that is still idle after the
  ad-hoc queue was served (never at ad-hoc jobs' expense);
* grants are capped by believed remaining work, so estimate overruns shrink
  to a 1-unit trickle until completion (re-planning handles the rest).

**Degraded mode** (fault tolerance): when the LP planner raises
:class:`~repro.lp.solver.SolverFailure` (backend broke on every attempt, or
a solve blew its wall-time budget), the scheduler does not crash the slot.
It keeps the last feasible plan for already-admitted work and tops up with
an EDF-greedy decision for the current slot — deadline jobs by decomposed
deadline, then ad-hoc leftovers as usual — and re-attempts the LP on every
subsequent slot, recovering automatically on the first successful solve.
Counters: ``sched.plan.failures`` (failed plan attempts),
``sched.degraded.slots`` (slots decided without a fresh plan); trace
events: ``plan_fallback`` / ``plan_recovered``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.allocation import AllocationPlan
from repro.core.decomposition import decompose_deadline
from repro.core.decomposition_types import JobWindow
from repro.core.flowtime import FlowTimePlanner, JobDemand, PlannerConfig
from repro.core.replan import PlanRequest
from repro.lp.solver import SolverFailure
from repro.model.events import Event, EventKind
from repro.obs import current_obs
from repro.schedulers.base import Assignment, Scheduler
from repro.simulator.view import ClusterView, fit_units


class FlowTimeScheduler(Scheduler):
    """Deadline decomposition + lexmin LP planning + leftover ad-hoc serving."""

    name = "FlowTime"

    def __init__(
        self,
        planner_config: PlannerConfig | None = None,
        *,
        cluster_aware_decomposition: bool = True,
        work_conserving: bool = True,
        adhoc_policy: str = "fair",
    ):
        if adhoc_policy not in ("fifo", "fair"):
            raise ValueError(f"unknown ad-hoc policy {adhoc_policy!r}")
        self.planner = FlowTimePlanner(planner_config)
        self.cluster_aware_decomposition = cluster_aware_decomposition
        self.work_conserving = work_conserving
        self.adhoc_policy = adhoc_policy
        self._windows: dict[str, JobWindow] = {}
        self._plan: Optional[AllocationPlan] = None
        self._needs_replan = False
        self.replans = 0
        self.plan_failures = 0
        self._degraded_mode = False

    @property
    def windows(self) -> dict[str, JobWindow]:
        """Decomposed per-job windows (also the metrics ground truth)."""
        return dict(self._windows)

    @property
    def current_plan(self) -> Optional[AllocationPlan]:
        """The live allocation plan (None before the first planning round).

        Read-only duck-typed surface for frontends that expose plan state
        (the service's ``GET /plan``); plans are replaced wholesale on each
        re-plan, never mutated in place.
        """
        return self._plan

    @property
    def degraded(self) -> bool:
        """True while the last plan attempt failed (serving EDF fallback)."""
        return self._degraded_mode

    # -- event handling -----------------------------------------------------------

    def on_events(self, events: Sequence[Event], view: ClusterView) -> None:
        for event in events:
            kind = event.kind
            if kind is EventKind.WORKFLOW_ARRIVED:
                workflow = view.workflows[event.workflow_id]
                result = decompose_deadline(
                    workflow,
                    view.capacity,
                    cluster_aware=self.cluster_aware_decomposition,
                )
                self._windows.update(result.windows)
                self._needs_replan = True
            elif kind is EventKind.WORKFLOW_WITHDRAWN:
                # The withdrawn workflow's jobs are gone from the view; the
                # stale plan may still reserve capacity for them, so force a
                # re-plan (its stale windows are harmless — demands are
                # rebuilt from the live view).
                self._needs_replan = True
            elif kind in (
                EventKind.JOB_READY,
                EventKind.JOB_COMPLETED,
                EventKind.JOB_SETBACK,
            ):
                if getattr(event, "workflow_id", None) is not None:
                    self._needs_replan = True
            # Ad-hoc arrivals/completions never trigger an LP re-solve: the
            # LP only places deadline work; ad-hoc jobs take the leftovers.

    # -- planning -----------------------------------------------------------------

    def _demands(self, view: ClusterView) -> list[JobDemand]:
        demands = []
        for job in view.live_deadline_jobs():
            window = self._windows.get(job.job_id)
            if window is None:  # defensive: workflow decomposed on arrival
                continue
            demands.append(
                JobDemand(
                    job_id=job.job_id,
                    release_slot=window.release_slot,
                    deadline_slot=window.deadline_slot,
                    units=job.believed_remaining_units,
                    unit_demand=job.unit_demand,
                    max_parallel=job.max_parallel,
                )
            )
        return demands

    def _ensure_plan(self, view: ClusterView) -> AllocationPlan:
        plan = self._plan
        stale = (
            plan is None
            or self._needs_replan
            or view.slot >= plan.origin_slot + plan.horizon
        )
        if stale:
            demands = self._demands(view)
            if demands:
                request = PlanRequest(
                    now_slot=view.slot,
                    demands=tuple(demands),
                    capacity=view.capacity,
                )
                try:
                    self._plan = self.planner.plan(request)
                except SolverFailure as failure:
                    # Degraded mode: keep the last feasible plan (stale but
                    # safe for already-admitted work); assign() adds an EDF
                    # greedy decision for the current slot.  _needs_replan
                    # stays True, so every subsequent slot re-attempts the
                    # LP and the first success restores normal planning.
                    self.plan_failures += 1
                    self._degraded_mode = True
                    obs = current_obs()
                    obs.counter("sched.plan.failures").inc()
                    obs.event(
                        "plan_fallback",
                        slot=view.slot,
                        reason=failure.reason,
                        backend=failure.backend,
                        detail=str(failure),
                    )
                    if self._plan is None:
                        return AllocationPlan.empty(
                            view.slot, 1, view.capacity.resources
                        )
                    return self._plan
                self.replans += 1
                if self._degraded_mode:
                    self._degraded_mode = False
                    current_obs().event("plan_recovered", slot=view.slot)
            else:
                # No deadline work: a persistent empty plan (everything goes
                # to ad-hoc jobs) until the next deadline event.
                self._plan = AllocationPlan.empty(
                    view.slot, 2**30, view.capacity.resources
                )
                self._degraded_mode = False
            self._needs_replan = False
        return self._plan

    # -- assignment ------------------------------------------------------------------

    def assign(self, view: ClusterView) -> Assignment:
        plan = self._ensure_plan(view)
        runnable = {j.job_id: j for j in view.runnable_deadline_jobs()}

        # A job that overran its estimate generates no completion event, so
        # a stale plan could leave it starving; detecting the overrun is the
        # "task/job completes" trigger of Sec. VII-4 for the tail case.
        # (Skipped in degraded mode: the plan attempt already failed this
        # slot and the EDF fallback serves overrun jobs anyway.)
        if not self._degraded_mode:
            for job_id, job in runnable.items():
                overrun = job.executed_units >= job.est_spec.total_task_slots
                if overrun and plan.units_for(job_id, view.slot) == 0:
                    self._needs_replan = True
                    plan = self._ensure_plan(view)
                    break

        degraded = self._degraded_mode
        if degraded:
            current_obs().counter("sched.degraded.slots").inc()

        leftover = view.capacity_now()
        grants: dict[str, int] = {}
        for job_id, job in sorted(runnable.items()):
            planned = plan.units_for(job_id, view.slot)
            units = min(
                planned,
                job.believed_remaining_units,
                job.max_parallel,
                fit_units(leftover, job.unit_demand, planned),
            )
            if units > 0:
                grants[job_id] = units
                leftover = leftover.saturating_sub(job.unit_demand * units)

        if degraded:
            # EDF greedy for the current slot: the stale plan may not cover
            # this slot at all (new arrivals, horizon run-out), so deadline
            # work is topped up by urgency *before* ad-hoc jobs — in a
            # fault, meeting deadlines outranks ad-hoc turnaround.
            ordered = sorted(
                runnable.values(),
                key=lambda j: (
                    self._windows[j.job_id].deadline_slot
                    if j.job_id in self._windows
                    else view.slot,
                    j.job_id,
                ),
            )
            for job in ordered:
                already = grants.get(job.job_id, 0)
                room = (
                    min(job.believed_remaining_units, job.max_parallel) - already
                )
                units = fit_units(leftover, job.unit_demand, room)
                if units > 0:
                    grants[job.job_id] = already + units
                    leftover = leftover.saturating_sub(job.unit_demand * units)

        # Everything the flattened deadline skyline does not use goes to
        # ad-hoc jobs *now* — this is how FlowTime wins Fig. 4(c).  The
        # leftover is shared max-min fairly by default (FIFO optional).
        leftover = self.serve_adhoc(self.adhoc_policy, view, leftover, grants)

        if self.work_conserving and not leftover.is_zero():
            ordered = sorted(
                runnable.values(),
                key=lambda j: (
                    self._windows[j.job_id].deadline_slot
                    if j.job_id in self._windows
                    else view.slot,
                    j.job_id,
                ),
            )
            for job in ordered:
                already = grants.get(job.job_id, 0)
                room = min(job.believed_remaining_units, job.max_parallel) - already
                units = fit_units(leftover, job.unit_demand, room)
                if units > 0:
                    grants[job.job_id] = already + units
                    leftover = leftover.saturating_sub(job.unit_demand * units)
        return grants
