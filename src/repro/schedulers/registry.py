"""Scheduler registry: the one construction path for schedulers by name.

``make_scheduler(name, **opts)`` is what the CLI, the experiment harness,
and the examples use; :func:`register_scheduler` lets extensions (or tests)
add policies without editing any of them — ``--scheduler`` accepts whatever
is registered at parse time.
"""

from __future__ import annotations

from typing import Callable

from repro.core.flowtime import PlannerConfig
from repro.estimation.history import RunHistory
from repro.schedulers.base import Scheduler
from repro.schedulers.cora import CoraScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.schedulers.morpheus import MorpheusScheduler
from repro.schedulers.tetrisched import TetriSchedScheduler


def _flowtime(**kwargs) -> Scheduler:
    return FlowTimeScheduler(PlannerConfig(**kwargs.pop("planner", {})), **kwargs)


def _flowtime_no_ds(**kwargs) -> Scheduler:
    planner = dict(kwargs.pop("planner", {}))
    planner["slack_slots"] = 0
    scheduler = FlowTimeScheduler(PlannerConfig(**planner), **kwargs)
    scheduler.name = "FlowTime_no_ds"
    return scheduler


_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "FlowTime": _flowtime,
    "FlowTime_no_ds": _flowtime_no_ds,
    "CORA": lambda **kw: CoraScheduler(**kw),
    "EDF": lambda **kw: EdfScheduler(**kw),
    "Fair": lambda **kw: FairScheduler(**kw),
    "FIFO": lambda **kw: FifoScheduler(**kw),
    "Morpheus": lambda **kw: MorpheusScheduler(**kw),
    "TetriSched": lambda **kw: TetriSchedScheduler(**kw),
}

#: The Fig. 4 legend, in the paper's order, plus the extras.  Frozen at
#: import time; use :func:`available_schedulers` for the live list.
SCHEDULER_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def available_schedulers() -> tuple[str, ...]:
    """Every currently registered scheduler name (registration order)."""
    return tuple(_FACTORIES)


def register_scheduler(
    name: str,
    factory: Callable[..., Scheduler],
    *,
    overwrite: bool = False,
) -> None:
    """Register a scheduler factory under *name*.

    The factory is called as ``factory(**kwargs)`` by
    :func:`make_scheduler`; registered names immediately work everywhere a
    scheduler is named (CLI ``--scheduler``, ``run_comparison``, ...).

    Raises:
        ValueError: *name* is already registered and ``overwrite`` is False.
    """
    if name in _FACTORIES and not overwrite:
        raise ValueError(
            f"scheduler {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _FACTORIES[name] = factory


def unregister_scheduler(name: str) -> None:
    """Remove a registered scheduler (built-ins included; mostly for tests)."""
    try:
        del _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}") from None


def make_scheduler(name: str, *, history: RunHistory | None = None, **kwargs) -> Scheduler:
    """Build a fresh scheduler by name ("FlowTime", "CORA", "EDF", ...).

    ``history`` is forwarded to schedulers that learn from prior runs
    (Morpheus); other schedulers ignore it.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    if name == "Morpheus":
        kwargs.setdefault("history", history)
    return factory(**kwargs)
