"""FlowTime's core algorithms.

Stage 1 (Sec. IV): decompose each workflow deadline into per-job windows —
:mod:`repro.core.toposort` (grouped Kahn), :mod:`repro.core.decomposition`
(resource-demand-based split), :mod:`repro.core.critical_path` (the classic
fallback used when the window is tighter than the sum of minimum runtimes).

Stage 2 (Sec. V): schedule deadline jobs by lexicographically minimising the
normalised per-slot resource usage — :mod:`repro.core.lp_formulation` builds
the LP, :mod:`repro.core.lexmin` runs the iterative minimax,
:mod:`repro.core.allocation` re-quantises to integers, and
:mod:`repro.core.flowtime` packages it all as a re-plannable planner.
"""

from repro.core.admission import AdmissionDecision, check_admission
from repro.core.allocation import AllocationPlan, IntegralizationError
from repro.core.critical_path import critical_path_length, critical_path_windows
from repro.core.decomposition import (
    DecompositionResult,
    JobWindow,
    decompose_deadline,
)
from repro.core.flowtime import FlowTimePlanner, JobDemand, PlannerConfig, caps_array
from repro.core.lexmin import LexminResult, LexminWarmHint, lexmin_schedule
from repro.core.lp_formulation import ScheduleProblem, build_schedule_problem
from repro.core.replan import CachedPlan, PlanCache, PlanRequest
from repro.core.scalarization import g_scalarization, lex_leq, scalarized_schedule
from repro.core.toposort import grouped_topological_sets

__all__ = [
    "AdmissionDecision",
    "AllocationPlan",
    "CachedPlan",
    "DecompositionResult",
    "FlowTimePlanner",
    "IntegralizationError",
    "JobDemand",
    "JobWindow",
    "LexminResult",
    "LexminWarmHint",
    "PlanCache",
    "PlanRequest",
    "PlannerConfig",
    "ScheduleProblem",
    "caps_array",
    "build_schedule_problem",
    "check_admission",
    "critical_path_length",
    "critical_path_windows",
    "decompose_deadline",
    "g_scalarization",
    "grouped_topological_sets",
    "lex_leq",
    "lexmin_schedule",
    "scalarized_schedule",
]
