"""Shared dataclasses for deadline decomposition (avoids import cycles)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JobWindow:
    """The scheduling window a decomposition assigns to one job.

    The job may receive resources in slots ``release_slot <= t <
    deadline_slot`` and should be finished before ``deadline_slot``.
    """

    job_id: str
    release_slot: int
    deadline_slot: int

    def __post_init__(self) -> None:
        if self.deadline_slot <= self.release_slot:
            raise ValueError(
                f"window for {self.job_id} is empty: "
                f"[{self.release_slot}, {self.deadline_slot})"
            )

    @property
    def length_slots(self) -> int:
        return self.deadline_slot - self.release_slot
