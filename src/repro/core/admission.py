"""Admission control for deadline workflows (a Rayon-flavoured extension).

Rayon [4] — one of the paper's baselines' ancestors — admits a job only if
its reservation fits alongside existing commitments.  The same question is
well-posed for FlowTime: *given the deadline work already committed, can a
newly submitted workflow's decomposed windows still be honoured?*  The
max-placement LP from the planner answers it exactly: relax every demand to
``<=`` and maximise total placement; any shortfall is work that provably
cannot fit before its deadline.

This module is an extension beyond the paper (which assumes all workflows
are admitted) and is what an operator would bolt on to avoid accepting
workloads that are doomed to miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.core.decomposition import decompose_deadline
from repro.core.flowtime import JobDemand, PlannerConfig, caps_array
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.lp.problem import LinearProgram
from repro.lp.solver import solve_lp
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.obs import current_obs

__all__ = ["AdmissionDecision", "check_admission"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission check.

    Attributes:
        admit: True when every job (existing and new) can still meet its
            window.
        shortfall_units: per-job task-slots that provably cannot be placed
            before the job's deadline (empty when ``admit``).
        utilisation: the resulting max normalised load if admitted (a
            capacity-headroom signal even for admitted workflows).
    """

    admit: bool
    shortfall_units: Mapping[str, int]
    utilisation: float

    @property
    def total_shortfall(self) -> int:
        return sum(self.shortfall_units.values())


def check_admission(
    new_workflow: Workflow,
    existing_demands: Sequence[JobDemand],
    capacity: ClusterCapacity,
    now_slot: int,
    *,
    config: PlannerConfig | None = None,
) -> AdmissionDecision:
    """Would admitting *new_workflow* keep every deadline feasible?

    Args:
        new_workflow: the candidate workflow (its deadline windows are
            decomposed here, exactly as the scheduler would on arrival).
        existing_demands: remaining demands of already-admitted deadline
            jobs (what :meth:`FlowTimeScheduler._demands` tracks).
        capacity: the cluster.
        now_slot: current slot (windows before it are clamped).
        config: planner configuration (slack etc.) used to shape windows.

    The check is exact for the coupled formulation: max-placement under the
    joint windows either places all work (admit) or certifies a shortfall.
    """
    obs = current_obs()
    with obs.span("admission.check"):
        decision = _check_admission(
            new_workflow, existing_demands, capacity, now_slot, config=config
        )
    if decision.admit:
        obs.counter("admission.accepted").inc()
        obs.event(
            "admission_accept",
            workflow_id=new_workflow.workflow_id,
            slot=now_slot,
            utilisation=decision.utilisation,
        )
    else:
        obs.counter("admission.rejected").inc()
        obs.event(
            "admission_reject",
            workflow_id=new_workflow.workflow_id,
            slot=now_slot,
            shortfall_units=decision.total_shortfall,
            utilisation=decision.utilisation,
        )
    return decision


def _check_admission(
    new_workflow: Workflow,
    existing_demands: Sequence[JobDemand],
    capacity: ClusterCapacity,
    now_slot: int,
    *,
    config: PlannerConfig | None = None,
) -> AdmissionDecision:
    config = config or PlannerConfig()
    decomposition = decompose_deadline(new_workflow, capacity)
    new_demands = [
        JobDemand(
            job_id=job.job_id,
            release_slot=decomposition.windows[job.job_id].release_slot,
            deadline_slot=decomposition.windows[job.job_id].deadline_slot,
            units=job.tasks.total_task_slots,
            unit_demand=job.tasks.demand,
            max_parallel=job.tasks.count,
        )
        for job in new_workflow.jobs
    ]
    demands = list(existing_demands) + new_demands
    # Unlike the planner, admission must NOT repair infeasible windows — a
    # window too small for its own work is precisely a reason to reject.
    entries = []
    slack = config.slack_slots
    for demand in demands:
        release = max(demand.release_slot - now_slot, 0)
        deadline = demand.deadline_slot - now_slot
        if slack and deadline - slack > release:
            deadline -= slack
        deadline = max(deadline, release + 1)
        entries.append(
            ScheduleEntry(
                job_id=demand.job_id,
                release=release,
                deadline=deadline,
                units=demand.units,
                unit_demand=demand.unit_demand,
                max_parallel=demand.max_parallel,
            )
        )
    horizon = max(entry.deadline for entry in entries)
    caps = caps_array(capacity, now_slot, horizon)
    problem = build_schedule_problem(
        entries, caps, capacity.resources, mode="coupled", per_slot_caps=True
    )

    cap_rows = problem.cell_caps()
    lp = LinearProgram(
        c=-np.ones(problem.n_vars),
        a_ub=sparse.vstack([problem.a_util, problem.a_eq]).tocsr(),
        b_ub=np.concatenate([cap_rows, problem.b_eq]),
        lb=np.zeros(problem.n_vars),
        ub=problem.var_ub,
    )
    sol = solve_lp(lp, tag="admission")
    x = sol.require_optimal()
    placed = np.asarray(problem.a_eq @ x).ravel()

    shortfalls: dict[str, int] = {}
    for entry, got, want in zip(problem.entries, placed, problem.b_eq):
        missing = int(round(want - got))
        if missing > 0:
            shortfalls[entry.job_id] = missing

    loads = np.asarray(problem.a_util @ x).ravel()
    utilisation = float((loads / np.maximum(cap_rows, 1e-12)).max(initial=0.0))
    return AdmissionDecision(
        admit=not shortfalls,
        shortfall_units=shortfalls,
        utilisation=utilisation,
    )
