"""Integral allocation plans and quantisation of fractional LP solutions.

Lemma 2 of the paper guarantees integral vertex optima for the *paper*
formulation.  After the iterative lexmin rounds (whose frozen caps
``theta* C`` are fractional) and in the *coupled* formulation, solutions can
come back fractional, so this module re-quantises them:

* floor every variable (always feasible: loads only go down);
* hand each job's leftover units back one at a time, preferring the slots
  with the largest fractional parts (keeps the shape of the LP optimum);
* if a unit fits nowhere, try a one-step relocation (move another job's
  unit out of a candidate slot);
* if that fails too, raise :class:`IntegralizationError` — callers fall
  back to :func:`greedy_fill`, an EDF water-filling that is always feasible
  but does not preserve the balanced skyline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.lp_formulation import ScheduleEntry, ScheduleProblem
from repro.model.resources import ResourceVector


class IntegralizationError(RuntimeError):
    """Raised when greedy rounding plus relocation cannot place all units."""


@dataclass
class AllocationPlan:
    """An integral, executable allocation over a planning horizon.

    ``grants[job_id][k]`` is the number of task-slot units granted to the
    job in absolute slot ``origin_slot + k``.  ``unit_demands[job_id]`` is
    the per-task-slot resource vector, so the resource grant in a slot is
    ``grants * unit_demand``.
    """

    origin_slot: int
    horizon: int
    resources: tuple[str, ...]
    grants: dict[str, np.ndarray]
    unit_demands: dict[str, ResourceVector]
    degraded: bool = False
    minimax: float = float("nan")

    def units_for(self, job_id: str, abs_slot: int) -> int:
        offset = abs_slot - self.origin_slot
        grant = self.grants.get(job_id)
        if grant is None or not 0 <= offset < self.horizon:
            return 0
        return int(grant[offset])

    def resources_for(self, job_id: str, abs_slot: int) -> ResourceVector:
        units = self.units_for(job_id, abs_slot)
        if units == 0:
            return ResourceVector()
        return self.unit_demands[job_id] * units

    def load(self, abs_slot: int) -> ResourceVector:
        """Total deadline-work resource usage planned for a slot."""
        total = ResourceVector()
        for job_id in self.grants:
            total = total + self.resources_for(job_id, abs_slot)
        return total

    def total_units(self, job_id: str) -> int:
        grant = self.grants.get(job_id)
        return int(grant.sum()) if grant is not None else 0

    @staticmethod
    def empty(origin_slot: int, horizon: int, resources: Sequence[str]) -> "AllocationPlan":
        return AllocationPlan(
            origin_slot=origin_slot,
            horizon=max(horizon, 1),
            resources=tuple(resources),
            grants={},
            unit_demands={},
        )


def _residual_ok(
    residual: np.ndarray, slot: int, demand: ResourceVector, r_index: Mapping[str, int]
) -> bool:
    return all(
        residual[slot, r_index[name]] >= amount for name, amount in demand.items()
    )


def _apply(
    residual: np.ndarray,
    slot: int,
    demand: ResourceVector,
    r_index: Mapping[str, int],
    sign: int,
) -> None:
    for name, amount in demand.items():
        residual[slot, r_index[name]] -= sign * amount


def quantize_coupled(
    problem: ScheduleProblem, x: np.ndarray, *, relocation: bool = True
) -> dict[str, np.ndarray]:
    """Round a fractional coupled-mode solution to integral task-slot grants.

    Returns ``job_id -> int array over [0, horizon)`` whose row sums equal
    each entry's ``units`` and whose aggregate load respects the capacity
    skyline.  Raises :class:`IntegralizationError` when no integral
    completion is found (callers fall back to :func:`greedy_fill`).
    """
    if problem.mode != "coupled":
        raise ValueError("quantize_coupled requires a coupled-mode problem")
    horizon = problem.horizon
    r_index = {name: k for k, name in enumerate(problem.resources)}
    residual = problem.caps.astype(float).copy()

    # Reshape the flat variable vector into per-entry window arrays.  LP
    # solvers return values a hair outside [0, ub]; clip before rounding.
    frac_matrix = np.zeros((len(problem.entries), horizon))
    frac_matrix[problem.var_meta[:, 0], problem.var_meta[:, 1]] = np.maximum(
        np.asarray(x, dtype=float)[: problem.n_vars], 0.0
    )
    frac: list[np.ndarray] = list(frac_matrix)

    grants = [np.zeros(horizon, dtype=int) for _ in problem.entries]
    for e_index, entry in enumerate(problem.entries):
        floor = np.floor(frac[e_index] + 1e-6).astype(int)
        cap = min(entry.max_parallel, entry.units)
        floor = np.minimum(floor, cap)
        grants[e_index] = floor
        for slot in range(entry.release, entry.deadline):
            if floor[slot]:
                _apply(residual, slot, entry.unit_demand * int(floor[slot]), r_index, +1)

    if np.any(residual < -1e-6):
        raise IntegralizationError("floored solution exceeds capacity")
    residual = np.maximum(residual, 0.0)

    for e_index, entry in enumerate(problem.entries):
        remaining = entry.units - int(grants[e_index].sum())
        if remaining < 0:
            raise IntegralizationError(
                f"{entry.job_id}: floored grants exceed its demand"
            )
        cap = min(entry.max_parallel, entry.units)
        window = list(range(entry.release, entry.deadline))
        # Prefer slots with the largest fractional part.
        order = sorted(
            window,
            key=lambda s: frac[e_index][s] - np.floor(frac[e_index][s] + 1e-9),
            reverse=True,
        )

        def try_place(slot: int) -> bool:
            if grants[e_index][slot] >= cap:
                return False
            if not _residual_ok(residual, slot, entry.unit_demand, r_index):
                return False
            grants[e_index][slot] += 1
            _apply(residual, slot, entry.unit_demand, r_index, +1)
            return True

        # Pass 1 — ideal rounding: at most one extra unit per slot (each
        # slot's fractional remainder is < 1), keeping the LP's shape.
        for slot in order:
            if remaining == 0:
                break
            if try_place(slot):
                remaining -= 1
        # Pass 2 — spill anywhere in the window, relocating other jobs'
        # units when a slot has parallelism headroom but no capacity.
        while remaining > 0:
            placed = False
            for slot in order:
                if try_place(slot):
                    remaining -= 1
                    placed = True
                    break
            if placed:
                continue
            if relocation and _relocate_one(
                problem, grants, residual, e_index, r_index
            ):
                continue
            raise IntegralizationError(
                f"could not place {remaining} units of {entry.job_id}"
            )

    return {
        entry.job_id: grants[e_index]
        for e_index, entry in enumerate(problem.entries)
    }


def _relocate_one(
    problem: ScheduleProblem,
    grants: list[np.ndarray],
    residual: np.ndarray,
    needy: int,
    r_index: Mapping[str, int],
) -> bool:
    """Free room for one unit of entry *needy* by moving another job's unit.

    Scans the needy job's window for a slot where it still has parallelism
    headroom; for each such slot, looks for a different entry with a unit
    there that can move to another slot of its own window.  Returns True if
    a relocation was performed (the caller retries the placement).
    """
    entry = problem.entries[needy]
    cap = min(entry.max_parallel, entry.units)
    for slot in range(entry.release, entry.deadline):
        if grants[needy][slot] >= cap:
            continue
        for other_idx, other in enumerate(problem.entries):
            if other_idx == needy or grants[other_idx][slot] == 0:
                continue
            if not (other.release <= slot < other.deadline):
                continue
            other_cap = min(other.max_parallel, other.units)
            for target in range(other.release, other.deadline):
                if target == slot or grants[other_idx][target] >= other_cap:
                    continue
                if not _residual_ok(residual, target, other.unit_demand, r_index):
                    continue
                # Move one unit of `other` from `slot` to `target`.
                grants[other_idx][slot] -= 1
                _apply(residual, slot, other.unit_demand, r_index, -1)
                grants[other_idx][target] += 1
                _apply(residual, target, other.unit_demand, r_index, +1)
                if _residual_ok(residual, slot, entry.unit_demand, r_index):
                    return True
                # Not enough yet; keep the move (it freed capacity) and
                # let the outer loop continue searching.
    return False


def greedy_fill(
    entries: Sequence[ScheduleEntry],
    caps: np.ndarray,
    resources: Sequence[str],
    *,
    extend_past_deadline: bool = True,
) -> dict[str, np.ndarray]:
    """EDF water-filling fallback: always produces a feasible partial plan.

    Slots are processed in time order; in each slot released jobs are served
    in deadline order, each receiving as many task-slot units as parallelism
    and residual capacity allow.  With ``extend_past_deadline`` jobs keep
    receiving resources after their window (best effort — the cluster is
    over-committed if we got here); demand that still does not fit is left
    unplanned and re-attempted at the next re-plan.
    """
    caps = np.asarray(caps, dtype=float)
    horizon = caps.shape[0]
    r_index = {name: k for k, name in enumerate(resources)}
    residual = caps.copy()
    grants = {entry.job_id: np.zeros(horizon, dtype=int) for entry in entries}
    remaining = {entry.job_id: entry.units for entry in entries}
    ordered = sorted(entries, key=lambda e: (e.deadline, e.release, e.job_id))
    for slot in range(horizon):
        for entry in ordered:
            if remaining[entry.job_id] <= 0 or slot < entry.release:
                continue
            if not extend_past_deadline and slot >= entry.deadline:
                continue
            cap = min(entry.max_parallel, remaining[entry.job_id])
            for name, amount in entry.unit_demand.items():
                fit = int(residual[slot, r_index[name]] // amount)
                cap = min(cap, fit)
            units = max(cap, 0)
            if units:
                grants[entry.job_id][slot] += units
                remaining[entry.job_id] -= units
                _apply(residual, slot, entry.unit_demand * units, r_index, +1)
    return grants
