"""Grouped topological ordering (Sec. IV-A).

FlowTime's twist on Kahn's algorithm [8]: instead of emitting one node at a
time, each round emits the whole set of nodes whose dependencies are already
satisfied.  Jobs inside one *node set* have no dependencies among them and can
run in parallel, so the deadline decomposition hands each set a single
sub-window.  For the paper's Fig. 3 fork-join DAG the output is
``[{1}, {2, ..., n}, {n+1}]``.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.workflow import Workflow


def grouped_topological_sets(workflow: Workflow) -> tuple[tuple[str, ...], ...]:
    """Partition the workflow's jobs into dependency levels.

    Returns a tuple of node sets in topological order; each set is a tuple of
    job ids sorted for determinism.  Every job appears exactly once, and every
    edge goes from an earlier set to a strictly later one.
    """
    indegree = {job_id: len(workflow.parents_of(job_id)) for job_id in workflow.job_ids}
    current = sorted(job_id for job_id, deg in indegree.items() if deg == 0)
    levels: list[tuple[str, ...]] = []
    emitted = 0
    while current:
        levels.append(tuple(current))
        emitted += len(current)
        next_level: set[str] = set()
        for job_id in current:
            for child in workflow.dependents_of(job_id):
                indegree[child] -= 1
                if indegree[child] == 0:
                    next_level.add(child)
        current = sorted(next_level)
    if emitted != len(workflow):
        # Workflow.__post_init__ already rejects cycles; defensive only.
        raise ValueError(f"workflow {workflow.workflow_id} contains a cycle")
    return tuple(levels)


def level_of(levels: Sequence[Sequence[str]], job_id: str) -> int:
    """Index of the node set containing *job_id* (KeyError if absent)."""
    for index, level in enumerate(levels):
        if job_id in level:
            return index
    raise KeyError(job_id)
