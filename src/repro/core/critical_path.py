"""Critical-path deadline decomposition (the fallback of Sec. IV-B).

This is the classic scheme of Yu et al. [7] that FlowTime compares against in
Fig. 3 and falls back to "in some cases [when] the remaining time is
negative": each job's deadline is placed proportionally to the cumulative
minimum runtime along the longest path that ends at the job, scaled so the
whole critical path fits the workflow window.  It ignores resource demands —
that is exactly the weakness the resource-demand-based decomposition fixes.
"""

from __future__ import annotations

from repro.core.decomposition_types import JobWindow
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow


def _min_runtimes(
    workflow: Workflow, capacity: ClusterCapacity | None, cluster_aware: bool
) -> dict[str, int]:
    cap = capacity.base if (cluster_aware and capacity is not None) else None
    return {
        job.job_id: job.min_runtime_slots(cap) for job in workflow.jobs
    }


def critical_path_length(
    workflow: Workflow,
    capacity: ClusterCapacity | None = None,
    cluster_aware: bool = False,
) -> int:
    """Length (in slots) of the workflow's critical path of minimum runtimes."""
    runtime = _min_runtimes(workflow, capacity, cluster_aware)
    finish = _earliest_finish(workflow, runtime)
    return max(finish.values())


def _earliest_finish(workflow: Workflow, runtime: dict[str, int]) -> dict[str, int]:
    """Longest-path-to-and-including each job, in topological order."""
    finish: dict[str, int] = {}
    pending = {job_id: len(workflow.parents_of(job_id)) for job_id in workflow.job_ids}
    frontier = [job_id for job_id, deg in pending.items() if deg == 0]
    while frontier:
        job_id = frontier.pop()
        start = max(
            (finish[parent] for parent in workflow.parents_of(job_id)), default=0
        )
        finish[job_id] = start + runtime[job_id]
        for child in workflow.dependents_of(job_id):
            pending[child] -= 1
            if pending[child] == 0:
                frontier.append(child)
    return finish


def critical_path_windows(
    workflow: Workflow,
    capacity: ClusterCapacity | None = None,
    cluster_aware: bool = False,
) -> dict[str, JobWindow]:
    """Per-job (release, deadline) windows by critical-path proportions.

    The workflow window ``[ws, wd)`` is stretched (or squeezed, when the
    window is tighter than the critical path) so that a job finishing at
    longest-path position ``f`` gets deadline ``ws + window * f / CP``.  A
    job's release is the latest deadline among its parents, so precedence is
    respected by construction.  Windows are clamped to at least one slot;
    when the workflow is infeasible (window < number of levels) deadlines
    may exceed ``wd`` — callers treat those jobs as best-effort.
    """
    runtime = _min_runtimes(workflow, capacity, cluster_aware)
    finish = _earliest_finish(workflow, runtime)
    cp = max(finish.values())
    window = workflow.window_slots
    scale = window / cp if cp > 0 else 1.0

    windows: dict[str, JobWindow] = {}
    # Process in topological order so parents are done first.
    pending = {job_id: len(workflow.parents_of(job_id)) for job_id in workflow.job_ids}
    frontier = sorted(job_id for job_id, deg in pending.items() if deg == 0)
    while frontier:
        job_id = frontier.pop(0)
        release = max(
            (windows[parent].deadline_slot for parent in workflow.parents_of(job_id)),
            default=workflow.start_slot,
        )
        deadline = workflow.start_slot + round(finish[job_id] * scale)
        deadline = max(deadline, release + 1)
        windows[job_id] = JobWindow(
            job_id=job_id, release_slot=release, deadline_slot=deadline
        )
        for child in workflow.dependents_of(job_id):
            pending[child] -= 1
            if pending[child] == 0:
                frontier.append(child)
        frontier.sort()
    return windows
