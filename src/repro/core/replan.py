"""Incremental re-planning support: plan requests, fingerprints, plan cache.

FlowTime re-solves the lexicographic-minimax LP every time the deadline-job
mix changes (Sec. V/VI), and the LP is the scalability bottleneck (Fig. 7).
Consecutive solves are highly redundant in practice: recurring workflows
(Sec. I — "typically recurring, running on a daily, weekly or monthly
basis") present the *same* remaining-demand shape at the same relative
offsets every period, and most re-plan triggers change a single job.

This module keeps the planner's hot path incremental:

* :class:`PlanRequest` — one value object carrying everything a plan needs
  (now, demands, capacity, optional config override), replacing the
  positional-argument sprawl of the old ``plan(now, demands, capacity)``.
* :func:`PlanRequest.fingerprint` — a canonical, time-shift-invariant key
  of (remaining demands, windows, capacity skyline, config).  Demands are
  anonymised (job ids dropped, windows made relative to *now*) so the i-th
  instance of a recurring workflow hits the cache entries primed by the
  (i-1)-th, exactly the amortisation Morpheus (OSDI '16) argues for.
* :class:`PlanCache` — a bounded LRU from fingerprint to the solved plan.
  A hit skips the LP ladder entirely; the stored grant rows are re-keyed to
  the requesting jobs' ids and re-anchored at the new origin slot.

Cache *correctness* relies on the planner being a deterministic function of
the fingerprint's inputs: two requests with equal fingerprints see
byte-identical LP data, so the cold solve would return the same plan (the
plan-equivalence tests pin this down).  Jobs that tie on the anonymous key
are interchangeable by construction — same window, work, shape and
parallelism — and are assigned rows in a deterministic (key, job_id) order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.core.allocation import AllocationPlan
from repro.model.cluster import ClusterCapacity

if TYPE_CHECKING:  # real imports would cycle through repro.core.flowtime
    from repro.core.flowtime import JobDemand, PlannerConfig

__all__ = ["CachedPlan", "PlanCache", "PlanRequest"]


def _demand_key(demand: "JobDemand", now_slot: int) -> tuple:
    """Anonymous, sortable, time-relative identity of one demand.

    Matches exactly what the planner's window preparation consumes: the
    effective relative release (clamped at 0 like ``_entry_for``), the
    relative deadline, remaining units, the per-unit resource shape, and
    the parallelism bound.  The job id is deliberately absent.
    """
    return (
        max(demand.release_slot - now_slot, 0),
        demand.deadline_slot - now_slot,
        demand.units,
        tuple(sorted(demand.unit_demand.items())),
        demand.max_parallel,
    )


def _capacity_key(capacity: ClusterCapacity, now_slot: int) -> tuple:
    """Time-relative capacity identity: base plus future overrides.

    Overrides strictly before *now* can never be read by a plan anchored at
    *now* (the caps array samples ``now + k`` for ``k >= 0``), so dropping
    them keeps steady-state fingerprints equal across periods.
    """
    overrides = tuple(
        sorted(
            (slot - now_slot, tuple(sorted(cap.items())))
            for slot, cap in capacity.overrides.items()
            if slot >= now_slot
        )
    )
    return (tuple(sorted(capacity.base.items())), overrides)


@dataclass(frozen=True)
class PlanRequest:
    """Everything one planning round needs, as a single value object.

    Attributes:
        now_slot: absolute slot the plan is anchored at.
        demands: remaining demands of the live deadline jobs.
        capacity: the cluster's (possibly time-varying) capacity.
        config: optional per-request override of the planner's
            :class:`~repro.core.flowtime.PlannerConfig` (None = use the
            planner's own).
    """

    now_slot: int
    demands: tuple["JobDemand", ...]
    capacity: ClusterCapacity
    config: "PlannerConfig | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.demands, tuple):
            object.__setattr__(self, "demands", tuple(self.demands))

    def fingerprint(self, config: "PlannerConfig") -> Hashable:
        """Canonical cache key under the *effective* planner config."""
        return (
            tuple(sorted(_demand_key(d, self.now_slot) for d in self.demands)),
            _capacity_key(self.capacity, self.now_slot),
            config,
        )

    def canonical_demands(self) -> list["JobDemand"]:
        """Demands in deterministic (anonymous key, job_id) order.

        This is the row order of :class:`CachedPlan` grant arrays; ties on
        the anonymous key are interchangeable jobs, so breaking them by id
        keeps materialisation deterministic without affecting feasibility.
        """
        return sorted(
            self.demands, key=lambda d: (_demand_key(d, self.now_slot), d.job_id)
        )


@dataclass(frozen=True)
class CachedPlan:
    """One solved plan in anonymous, origin-free form."""

    horizon: int
    grant_rows: tuple[np.ndarray, ...]
    degraded: bool
    minimax: float

    @staticmethod
    def from_plan(plan: AllocationPlan, request: PlanRequest) -> "CachedPlan":
        rows = []
        for demand in request.canonical_demands():
            grant = plan.grants.get(demand.job_id)
            if grant is None:
                grant = np.zeros(plan.horizon, dtype=int)
            rows.append(np.array(grant, dtype=int, copy=True))
        return CachedPlan(
            horizon=plan.horizon,
            grant_rows=tuple(rows),
            degraded=plan.degraded,
            minimax=plan.minimax,
        )

    def materialise(self, request: PlanRequest) -> AllocationPlan:
        """Re-key the stored rows to the requesting jobs, anchored at now."""
        ordered = request.canonical_demands()
        if len(ordered) != len(self.grant_rows):  # defensive: fingerprint bug
            raise ValueError(
                f"cached plan has {len(self.grant_rows)} rows for "
                f"{len(ordered)} demands"
            )
        return AllocationPlan(
            origin_slot=request.now_slot,
            horizon=self.horizon,
            resources=request.capacity.resources,
            grants={
                demand.job_id: row.copy()
                for demand, row in zip(ordered, self.grant_rows)
            },
            unit_demands={d.job_id: d.unit_demand for d in request.demands},
            degraded=self.degraded,
            minimax=self.minimax,
        )


@dataclass
class PlanCache:
    """Bounded LRU of solved plans keyed by request fingerprint."""

    maxsize: int = 128
    hits: int = 0
    misses: int = 0
    _entries: "OrderedDict[Hashable, CachedPlan]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("plan cache maxsize must be >= 1")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> CachedPlan | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, plan: CachedPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "entries": float(len(self._entries)),
        }
