"""Builds the scheduling LP of Sec. V.

Two variable layouts are supported:

* ``mode="paper"`` — the paper's formulation verbatim: one variable
  ``x_it^r`` per (job, slot, resource), demand equalities per (job,
  resource), and per-(slot, resource) utilisation rows.  The constraint
  matrix has the interval structure of Lemma 2 (totally unimodular), which
  the tests verify with :mod:`repro.lp.unimodular`.

* ``mode="coupled"`` — one variable ``y_it`` per (job, slot) counting
  *task-slots* granted; the per-resource allocation is ``y_it *
  unit_demand_r``.  This couples resource types the way containers do in a
  real cluster (a task needs its cores *and* its memory in the same slot),
  produces a much smaller LP, and is what the executable planner uses.  It
  gives up the TU guarantee, so the integral repair in
  :mod:`repro.core.allocation` does the final quantisation.

Both layouts share :class:`ScheduleProblem`, which pre-assembles the sparse
utilisation matrix so the lexicographic minimax solver can slice rows
cheaply on every round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np
from scipy import sparse

from repro.model.resources import ResourceVector
from repro.obs import current_obs

Mode = Literal["paper", "coupled"]


@dataclass(frozen=True)
class ScheduleEntry:
    """One deadline-aware job as the LP sees it.

    Slots are *relative* to the plan origin: the job may receive resources in
    ``release <= t < deadline`` (both within ``[0, horizon)``), needs
    ``units`` more task-slots of work, each task-slot consuming
    ``unit_demand``, and can run at most ``max_parallel`` tasks at once.
    """

    job_id: str
    release: int
    deadline: int
    units: int
    unit_demand: ResourceVector
    max_parallel: int

    def __post_init__(self) -> None:
        if self.release < 0:
            raise ValueError(f"{self.job_id}: release must be >= 0")
        if self.deadline <= self.release:
            raise ValueError(
                f"{self.job_id}: empty window [{self.release}, {self.deadline})"
            )
        if self.units < 1:
            raise ValueError(f"{self.job_id}: units must be >= 1")
        if self.max_parallel < 1:
            raise ValueError(f"{self.job_id}: max_parallel must be >= 1")
        if self.unit_demand.is_zero():
            raise ValueError(f"{self.job_id}: unit demand must not be zero")

    def total_demand(self, resource: str) -> int:
        """The paper's ``s_i^r``."""
        return self.units * self.unit_demand[resource]


@dataclass
class ScheduleProblem:
    """Pre-assembled sparse pieces of the scheduling LP.

    Attributes:
        entries: the jobs, in variable-block order.
        resources: resource-type names, fixing the r index.
        caps: dense ``[horizon, n_resources]`` capacity array (``C_t^r``).
        n_vars: number of allocation variables (excludes the minimax theta,
            which the lexmin solver appends).
        a_eq / b_eq: demand equalities (constraint (2)).
        a_util: sparse ``[n_util_rows, n_vars]``; row k sums the allocation
            feeding utilisation cell ``util_cells[k] = (t, r)``.
        util_cells: the (slot, resource-index) of each utilisation row.
        var_ub: per-variable upper bound (per-slot parallelism caps).
        var_meta: per variable ``(entry_index, slot)`` (paper mode adds the
            resource index as a third element, else -1).
        mode: "paper" or "coupled".
    """

    entries: tuple[ScheduleEntry, ...]
    resources: tuple[str, ...]
    caps: np.ndarray
    n_vars: int
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    a_util: sparse.csr_matrix
    util_cells: tuple[tuple[int, int], ...]
    var_ub: np.ndarray
    var_meta: tuple[tuple[int, int, int], ...]
    mode: Mode

    @property
    def horizon(self) -> int:
        return self.caps.shape[0]

    def cap_of_cell(self, cell_index: int) -> float:
        slot, r_index = self.util_cells[cell_index]
        return float(self.caps[slot, r_index])

    def cell_caps(self) -> np.ndarray:
        """Per-utilisation-row capacity vector (vectorised ``cap_of_cell``).

        The lexmin ladder reads this once per rung; a single fancy-index
        gather replaces the per-cell Python loop on the hot path.
        """
        if not self.util_cells:
            return np.zeros(0)
        cells = np.asarray(self.util_cells)
        return self.caps[cells[:, 0], cells[:, 1]].astype(float)

    def utilisation(self, x: np.ndarray) -> np.ndarray:
        """Normalised usage ``z_t^r / C_t^r`` per utilisation cell."""
        loads = np.asarray(self.a_util @ x).ravel()
        return loads / np.maximum(self.cell_caps(), 1e-12)


def build_schedule_problem(
    entries: Sequence[ScheduleEntry],
    caps: np.ndarray,
    resources: Sequence[str],
    *,
    mode: Mode = "coupled",
    per_slot_caps: bool = True,
) -> ScheduleProblem:
    """Assemble the LP structure for the given jobs and capacity skyline.

    Args:
        entries: deadline jobs with relative windows inside ``[0, horizon)``.
        caps: ``[horizon, len(resources)]`` array of ``C_t^r``.
        resources: resource names fixing the column order of *caps*.
        mode: variable layout (see module docstring).
        per_slot_caps: bound each variable by the job's per-slot parallelism
            (True, executable) or leave it unbounded above like the paper's
            formulation (False; capacity rows still apply).

    Raises:
        ValueError on malformed windows or a window falling outside caps.
    """
    with current_obs().span("lp.build"):
        return _build_schedule_problem(
            entries, caps, resources, mode=mode, per_slot_caps=per_slot_caps
        )


def _build_schedule_problem(
    entries: Sequence[ScheduleEntry],
    caps: np.ndarray,
    resources: Sequence[str],
    *,
    mode: Mode,
    per_slot_caps: bool,
) -> ScheduleProblem:
    caps = np.asarray(caps, dtype=float)
    if caps.ndim != 2 or caps.shape[1] != len(resources):
        raise ValueError(
            f"caps must be [horizon, {len(resources)}], got {caps.shape}"
        )
    horizon = caps.shape[0]
    entries = tuple(entries)
    for entry in entries:
        if entry.deadline > horizon:
            raise ValueError(
                f"{entry.job_id}: deadline {entry.deadline} beyond horizon {horizon}"
            )

    resources = tuple(resources)
    r_index = {name: k for k, name in enumerate(resources)}

    var_meta: list[tuple[int, int, int]] = []
    var_ub: list[float] = []
    eq_rows: list[tuple[list[int], float]] = []  # (variable indices, rhs)

    # util_accumulator[(t, r)] -> list[(var, coeff)]
    util_acc: dict[tuple[int, int], list[tuple[int, float]]] = {}

    if mode == "coupled":
        for e_index, entry in enumerate(entries):
            var_ids = []
            for slot in range(entry.release, entry.deadline):
                var = len(var_meta)
                var_meta.append((e_index, slot, -1))
                cap = min(entry.max_parallel, entry.units)
                var_ub.append(float(cap) if per_slot_caps else np.inf)
                var_ids.append(var)
                for resource, amount in entry.unit_demand.items():
                    cell = (slot, r_index[resource])
                    util_acc.setdefault(cell, []).append((var, float(amount)))
            eq_rows.append((var_ids, float(entry.units)))
    elif mode == "paper":
        for e_index, entry in enumerate(entries):
            for resource in resources:
                amount = entry.unit_demand[resource]
                if amount == 0:
                    continue
                var_ids = []
                for slot in range(entry.release, entry.deadline):
                    var = len(var_meta)
                    var_meta.append((e_index, slot, r_index[resource]))
                    cap = min(entry.max_parallel, entry.units) * amount
                    var_ub.append(float(cap) if per_slot_caps else np.inf)
                    var_ids.append(var)
                    cell = (slot, r_index[resource])
                    util_acc.setdefault(cell, []).append((var, 1.0))
                eq_rows.append((var_ids, float(entry.total_demand(resource))))
    else:
        raise ValueError(f"unknown mode {mode!r}")

    n_vars = len(var_meta)
    if n_vars == 0:
        raise ValueError("no variables: entries list is empty")

    eq_data, eq_rows_idx, eq_cols = [], [], []
    b_eq = np.zeros(len(eq_rows))
    for row, (var_ids, rhs) in enumerate(eq_rows):
        b_eq[row] = rhs
        for var in var_ids:
            eq_rows_idx.append(row)
            eq_cols.append(var)
            eq_data.append(1.0)
    a_eq = sparse.csr_matrix(
        (eq_data, (eq_rows_idx, eq_cols)), shape=(len(eq_rows), n_vars)
    )

    cells = sorted(util_acc)
    util_data, util_rows_idx, util_cols = [], [], []
    for row, cell in enumerate(cells):
        for var, coeff in util_acc[cell]:
            util_rows_idx.append(row)
            util_cols.append(var)
            util_data.append(coeff)
    a_util = sparse.csr_matrix(
        (util_data, (util_rows_idx, util_cols)), shape=(len(cells), n_vars)
    )

    return ScheduleProblem(
        entries=entries,
        resources=resources,
        caps=caps,
        n_vars=n_vars,
        a_eq=a_eq,
        b_eq=b_eq,
        a_util=a_util,
        util_cells=tuple(cells),
        var_ub=np.asarray(var_ub, dtype=float),
        var_meta=tuple(var_meta),
        mode=mode,
    )
