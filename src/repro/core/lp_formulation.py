"""Builds the scheduling LP of Sec. V.

Two variable layouts are supported:

* ``mode="paper"`` — the paper's formulation verbatim: one variable
  ``x_it^r`` per (job, slot, resource), demand equalities per (job,
  resource), and per-(slot, resource) utilisation rows.  The constraint
  matrix has the interval structure of Lemma 2 (totally unimodular), which
  the tests verify with :mod:`repro.lp.unimodular`.

* ``mode="coupled"`` — one variable ``y_it`` per (job, slot) counting
  *task-slots* granted; the per-resource allocation is ``y_it *
  unit_demand_r``.  This couples resource types the way containers do in a
  real cluster (a task needs its cores *and* its memory in the same slot),
  produces a much smaller LP, and is what the executable planner uses.  It
  gives up the TU guarantee, so the integral repair in
  :mod:`repro.core.allocation` does the final quantisation.

Both layouts share :class:`ScheduleProblem`, which pre-assembles the sparse
utilisation matrix so the lexicographic minimax solver can slice rows
cheaply on every round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np
from scipy import sparse

from repro.model.resources import ResourceVector
from repro.obs import current_obs

Mode = Literal["paper", "coupled"]


@dataclass(frozen=True)
class ScheduleEntry:
    """One deadline-aware job as the LP sees it.

    Slots are *relative* to the plan origin: the job may receive resources in
    ``release <= t < deadline`` (both within ``[0, horizon)``), needs
    ``units`` more task-slots of work, each task-slot consuming
    ``unit_demand``, and can run at most ``max_parallel`` tasks at once.
    """

    job_id: str
    release: int
    deadline: int
    units: int
    unit_demand: ResourceVector
    max_parallel: int

    def __post_init__(self) -> None:
        if self.release < 0:
            raise ValueError(f"{self.job_id}: release must be >= 0")
        if self.deadline <= self.release:
            raise ValueError(
                f"{self.job_id}: empty window [{self.release}, {self.deadline})"
            )
        if self.units < 1:
            raise ValueError(f"{self.job_id}: units must be >= 1")
        if self.max_parallel < 1:
            raise ValueError(f"{self.job_id}: max_parallel must be >= 1")
        if self.unit_demand.is_zero():
            raise ValueError(f"{self.job_id}: unit demand must not be zero")

    def total_demand(self, resource: str) -> int:
        """The paper's ``s_i^r``."""
        return self.units * self.unit_demand[resource]


@dataclass
class ScheduleProblem:
    """Pre-assembled sparse pieces of the scheduling LP.

    Attributes:
        entries: the jobs, in variable-block order.
        resources: resource-type names, fixing the r index.
        caps: dense ``[horizon, n_resources]`` capacity array (``C_t^r``).
        n_vars: number of allocation variables (excludes the minimax theta,
            which the lexmin solver appends).
        a_eq / b_eq: demand equalities (constraint (2)).
        a_util: sparse ``[n_util_rows, n_vars]``; row k sums the allocation
            feeding utilisation cell ``util_cells[k] = (t, r)``.
        util_cells: the (slot, resource-index) of each utilisation row.
        var_ub: per-variable upper bound (per-slot parallelism caps).
        var_meta: ``[n_vars, 3]`` int array; row ``v`` is
            ``(entry_index, slot, resource_index)`` (the resource index is
            -1 in coupled mode).  Rows unpack like the historical tuples.
        mode: "paper" or "coupled".
    """

    entries: tuple[ScheduleEntry, ...]
    resources: tuple[str, ...]
    caps: np.ndarray
    n_vars: int
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    a_util: sparse.csr_matrix
    util_cells: tuple[tuple[int, int], ...]
    var_ub: np.ndarray
    var_meta: np.ndarray
    mode: Mode

    @property
    def horizon(self) -> int:
        return self.caps.shape[0]

    def cap_of_cell(self, cell_index: int) -> float:
        slot, r_index = self.util_cells[cell_index]
        return float(self.caps[slot, r_index])

    def cell_caps(self) -> np.ndarray:
        """Per-utilisation-row capacity vector (vectorised ``cap_of_cell``).

        The lexmin ladder reads this once per rung; a single fancy-index
        gather replaces the per-cell Python loop on the hot path.
        """
        if not self.util_cells:
            return np.zeros(0)
        cells = np.asarray(self.util_cells)
        return self.caps[cells[:, 0], cells[:, 1]].astype(float)

    def utilisation(self, x: np.ndarray) -> np.ndarray:
        """Normalised usage ``z_t^r / C_t^r`` per utilisation cell."""
        loads = np.asarray(self.a_util @ x).ravel()
        return loads / np.maximum(self.cell_caps(), 1e-12)


def build_schedule_problem(
    entries: Sequence[ScheduleEntry],
    caps: np.ndarray,
    resources: Sequence[str],
    *,
    mode: Mode = "coupled",
    per_slot_caps: bool = True,
) -> ScheduleProblem:
    """Assemble the LP structure for the given jobs and capacity skyline.

    Args:
        entries: deadline jobs with relative windows inside ``[0, horizon)``.
        caps: ``[horizon, len(resources)]`` array of ``C_t^r``.
        resources: resource names fixing the column order of *caps*.
        mode: variable layout (see module docstring).
        per_slot_caps: bound each variable by the job's per-slot parallelism
            (True, executable) or leave it unbounded above like the paper's
            formulation (False; capacity rows still apply).

    Raises:
        ValueError on malformed windows or a window falling outside caps.
    """
    with current_obs().span("lp.build"):
        return _build_schedule_problem(
            entries, caps, resources, mode=mode, per_slot_caps=per_slot_caps
        )


def _build_schedule_problem(
    entries: Sequence[ScheduleEntry],
    caps: np.ndarray,
    resources: Sequence[str],
    *,
    mode: Mode,
    per_slot_caps: bool,
) -> ScheduleProblem:
    caps = np.asarray(caps, dtype=float)
    if caps.ndim != 2 or caps.shape[1] != len(resources):
        raise ValueError(
            f"caps must be [horizon, {len(resources)}], got {caps.shape}"
        )
    horizon = caps.shape[0]
    entries = tuple(entries)
    for entry in entries:
        if entry.deadline > horizon:
            raise ValueError(
                f"{entry.job_id}: deadline {entry.deadline} beyond horizon {horizon}"
            )

    resources = tuple(resources)
    known = set(resources)
    for entry in entries:
        unknown = set(entry.unit_demand) - known
        if unknown:
            raise KeyError(
                f"{entry.job_id}: demand names unknown resource(s) {sorted(unknown)}"
            )

    if not entries:
        raise ValueError("no variables: entries list is empty")

    n_entries = len(entries)
    n_resources = len(resources)
    release = np.array([entry.release for entry in entries], dtype=np.int64)
    window = np.array(
        [entry.deadline - entry.release for entry in entries], dtype=np.int64
    )
    units = np.array([entry.units for entry in entries], dtype=np.int64)
    parallel_cap = np.minimum(
        np.array([entry.max_parallel for entry in entries], dtype=np.int64), units
    )
    demand = np.zeros((n_entries, n_resources))
    for e_index, entry in enumerate(entries):
        for r, name in enumerate(resources):
            demand[e_index, r] = entry.unit_demand[name]

    # Every (block, slot) pair becomes one variable; blocks are whole jobs
    # in coupled mode and (job, resource-with-demand) pairs in paper mode.
    # np.repeat over block lengths lays the variables out in exactly the
    # order the historical Python loops produced.
    if mode == "coupled":
        block_entry = np.arange(n_entries)
        block_resource = np.full(n_entries, -1, dtype=np.int64)
        block_rhs = units.astype(float)
        block_ub = parallel_cap.astype(float)
    elif mode == "paper":
        block_entry, block_resource = np.nonzero(demand > 0)
        block_rhs = (
            units[block_entry] * demand[block_entry, block_resource]
        ).astype(float)
        block_ub = (
            parallel_cap[block_entry] * demand[block_entry, block_resource]
        ).astype(float)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    block_len = window[block_entry]
    n_vars = int(block_len.sum())
    block_of_var = np.repeat(np.arange(block_entry.size), block_len)
    offsets = np.concatenate([[0], np.cumsum(block_len)[:-1]])
    slot_of_var = (
        np.arange(n_vars) - offsets[block_of_var] + release[block_entry][block_of_var]
    )
    entry_of_var = block_entry[block_of_var]
    resource_of_var = block_resource[block_of_var]
    var_meta = np.stack([entry_of_var, slot_of_var, resource_of_var], axis=1)
    var_ub = (
        block_ub[block_of_var]
        if per_slot_caps
        else np.full(n_vars, np.inf)
    )

    a_eq = sparse.csr_matrix(
        (np.ones(n_vars), (block_of_var, np.arange(n_vars))),
        shape=(block_entry.size, n_vars),
    )
    b_eq = block_rhs

    # Utilisation cells: coupled mode touches one cell per demanded
    # resource per variable, paper mode exactly the variable's own cell.
    if mode == "coupled":
        entry_rows, demand_r = np.nonzero(demand[entry_of_var] > 0)
        cell_var = entry_rows  # variable index of each (var, resource) touch
        cell_coeff = demand[entry_of_var[cell_var], demand_r]
        cell_key = slot_of_var[cell_var] * n_resources + demand_r
    else:
        cell_var = np.arange(n_vars)
        cell_coeff = np.ones(n_vars)
        cell_key = slot_of_var * n_resources + resource_of_var
    # np.unique sorts keys exactly like the historical sorted() over
    # (slot, r) tuples, so row order — and the golden traces — are stable.
    uniq_keys, cell_row = np.unique(cell_key, return_inverse=True)
    cell_row = cell_row.ravel()
    a_util = sparse.csr_matrix(
        (cell_coeff, (cell_row, cell_var)), shape=(uniq_keys.size, n_vars)
    )
    util_cells = tuple(
        zip(
            (uniq_keys // n_resources).tolist(),
            (uniq_keys % n_resources).tolist(),
        )
    )

    return ScheduleProblem(
        entries=entries,
        resources=resources,
        caps=caps,
        n_vars=n_vars,
        a_eq=a_eq,
        b_eq=b_eq,
        a_util=a_util,
        util_cells=util_cells,
        var_ub=np.asarray(var_ub, dtype=float),
        var_meta=var_meta,
        mode=mode,
    )
