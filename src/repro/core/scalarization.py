"""The paper's Lemma 1 scalarisation and λ-representation (Sec. V-B).

The paper turns the lexicographic minimax objective into a single separable
convex function via

    g(u) = sum_i k^{u_i},        k = |T||R|   (Lemma 1: g(u) <= g(v) <=> u lexmin-dominates v)

and linearises each convex term with the *λ-representation* of Eq. (8)-(9):
``f(y) = sum_j f(j) λ_j`` with ``y = sum_j j λ_j`` and ``sum_j λ_j = 1`` over
the integer breakpoints ``j`` of the term's domain.  Because the breakpoint
costs are convex, an LP minimiser automatically picks adjacent breakpoints,
so no integrality constraints are needed.

This module implements both *faithfully* so the equivalence can be tested —
but only for small instances: ``k^{u}`` overflows doubles once the number of
utilisation cells is large, which is exactly why the production solver
(:mod:`repro.core.lexmin`) uses the iterative minimax instead.  The two are
verified against each other in the test suite and in EXT benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.lp_formulation import ScheduleProblem
from repro.lp.problem import LinearProgram, LPStatus
from repro.lp.solver import solve_lp

__all__ = [
    "g_scalarization",
    "lex_leq",
    "scalarized_schedule",
]


def g_scalarization(u: np.ndarray, k: float) -> float:
    """The paper's ``g(u) = sum_i k^{u_i}`` (Lemma 1)."""
    u = np.asarray(u, dtype=float)
    if u.size == 0:
        return 0.0
    return float(np.sum(np.power(k, u)))


def lex_leq(u: np.ndarray, v: np.ndarray) -> bool:
    """True when ``u ⪯ v``: sorted-descending u is lexicographically <= v.

    This is the minimax ordering Lemma 1 talks about: compare the largest
    components first.
    """
    a = np.sort(np.asarray(u, dtype=float))[::-1]
    b = np.sort(np.asarray(v, dtype=float))[::-1]
    if a.size != b.size:
        raise ValueError("vectors must have equal length")
    for x, y in zip(a, b):
        if x < y - 1e-12:
            return True
        if x > y + 1e-12:
            return False
    return True


def scalarized_schedule(
    problem: ScheduleProblem,
    *,
    backend: str = "highs",
) -> np.ndarray | None:
    """Solve the scheduling LP with the paper's scalarised objective.

    Minimises ``sum_cells k^{z_cell / C_cell}`` using the λ-representation:
    every utilisation cell gets λ variables over the integer load values
    ``0..C_cell``.  Exact in exact arithmetic; numerically usable only when
    ``k ** 1`` stays small — i.e. few cells and small integer capacities.

    Returns the allocation vector ``x`` (length ``problem.n_vars``) or None
    when the problem is infeasible.

    Raises:
        ValueError: when the instance is too large for the scalarisation to
            be numerically meaningful (cell count times capacity too big).
    """
    n_cells = len(problem.util_cells)
    caps = np.array([problem.cap_of_cell(c) for c in range(n_cells)])
    if np.any(caps != np.round(caps)):
        raise ValueError("λ-representation needs integral capacities")
    k = float(n_cells)
    if k < 2.0:
        k = 2.0
    total_breakpoints = int(np.sum(caps + 1))
    if total_breakpoints > 4000 or k > 64:
        raise ValueError(
            f"instance too large for the k^u scalarisation "
            f"({n_cells} cells, {total_breakpoints} breakpoints) — use "
            f"repro.core.lexmin instead (that is the point of this module)"
        )

    n_x = problem.n_vars
    # Variable layout: [x | λ_cell0_j0.. | λ_cell1_j0.. | ...].
    lambda_offset: list[int] = []
    n_lambda = 0
    for c in range(n_cells):
        lambda_offset.append(n_x + n_lambda)
        n_lambda += int(caps[c]) + 1
    n_total = n_x + n_lambda

    cost = np.zeros(n_total)
    rows_eq = []
    data_eq = []
    cols_eq = []
    b_eq_extra = []
    row = 0
    # z_cell - sum_j j λ_j = 0   and   sum_j λ_j = 1 for every cell.
    a_util = problem.a_util.tocoo()
    util_by_cell: dict[int, list[tuple[int, float]]] = {}
    for r, c_var, value in zip(a_util.row, a_util.col, a_util.data):
        util_by_cell.setdefault(int(r), []).append((int(c_var), float(value)))
    for c in range(n_cells):
        cap = int(caps[c])
        offset = lambda_offset[c]
        # sum_vars coeff*x - sum_j j λ_j = 0
        for var, coeff in util_by_cell.get(c, []):
            rows_eq.append(row)
            cols_eq.append(var)
            data_eq.append(coeff)
        for j in range(cap + 1):
            rows_eq.append(row)
            cols_eq.append(offset + j)
            data_eq.append(-float(j))
            cost[offset + j] = k ** (j / cap)
        b_eq_extra.append(0.0)
        row += 1
        # sum_j λ_j = 1
        for j in range(cap + 1):
            rows_eq.append(row)
            cols_eq.append(offset + j)
            data_eq.append(1.0)
        b_eq_extra.append(1.0)
        row += 1

    lambda_eq = sparse.csr_matrix(
        (data_eq, (rows_eq, cols_eq)), shape=(row, n_total)
    )
    demand_eq = sparse.hstack(
        [problem.a_eq, sparse.csr_matrix((problem.a_eq.shape[0], n_lambda))]
    ).tocsr()
    a_eq = sparse.vstack([demand_eq, lambda_eq]).tocsr()
    b_eq = np.concatenate([problem.b_eq, np.asarray(b_eq_extra)])

    # Hard capacity rows on the x block (constraint (4)).
    a_ub = sparse.hstack(
        [problem.a_util, sparse.csr_matrix((n_cells, n_lambda))]
    ).tocsr()

    lb = np.zeros(n_total)
    ub = np.concatenate([problem.var_ub, np.ones(n_lambda)])

    lp = LinearProgram(
        c=cost, a_ub=a_ub, b_ub=caps.astype(float), a_eq=a_eq, b_eq=b_eq, lb=lb, ub=ub
    )
    sol = solve_lp(lp, backend=backend)
    if sol.status is LPStatus.INFEASIBLE:
        return None
    return sol.require_optimal()[:n_x]
