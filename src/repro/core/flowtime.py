"""The FlowTime planner: decomposed windows in, executable plan out.

This is the paper's Sec. V/VI engine.  Every time the job mix changes (a job
arrives, becomes ready, or completes) the scheduler calls :meth:`plan` with
the *remaining* demands of all live deadline-aware jobs.  The planner:

1. applies the **deadline slack** (Sec. VII-2): demands are required
   ``slack_slots`` before the decomposed deadline whenever the tightened
   window can still hold the job;
2. repairs per-job infeasibility (overdue jobs, windows too small for the
   remaining work) by extending windows just enough — the dynamic-replanning
   answer to estimation errors;
3. solves the lexicographic minimax LP (Sec. V-B) to get the flattest
   possible deadline-work skyline, so ad-hoc jobs get the most leftover
   capacity as early as possible;
4. re-quantises to an integral plan; if the LP is infeasible even after
   relaxing all windows (the cluster is over-committed) it degrades to EDF
   water-filling rather than failing.

The planner has no simulator state and no clocks: it maps a
:class:`~repro.core.replan.PlanRequest` (now, demands, capacity, config) to
an :class:`~repro.core.allocation.AllocationPlan`.  Because that mapping is
deterministic, the planner memoises it — a fingerprint-keyed plan cache
skips the LP for repeated job mixes (recurring workflows), and the previous
solve's skyline warm-starts the lexmin ladder on near-identical ones; see
:mod:`repro.core.replan`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.core.allocation import (
    AllocationPlan,
    IntegralizationError,
    greedy_fill,
    quantize_coupled,
)
from repro.core.lexmin import LexminResult, LexminWarmHint, lexmin_schedule
from repro.core.lp_formulation import (
    Mode,
    ScheduleEntry,
    ScheduleProblem,
    build_schedule_problem,
)
from repro.core.replan import CachedPlan, PlanCache, PlanRequest
from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.obs import current_obs


def caps_array(
    capacity: ClusterCapacity, now_slot: int, horizon: int
) -> np.ndarray:
    """Per-slot capacity matrix ``C[k, r] = capacity.at(now + k)[r]``."""
    resources = capacity.resources
    caps = np.zeros((horizon, len(resources)))
    for k in range(horizon):
        cap_vec = capacity.at(now_slot + k)
        for r, name in enumerate(resources):
            caps[k, r] = cap_vec[name]
    return caps


@dataclass(frozen=True)
class PlannerConfig:
    """Tunables of the FlowTime planner.

    Attributes:
        slack_slots: deadline slack in slots (the paper's default is 60 s =
            6 slots of 10 s).  0 disables slack (the Fig. 5 ablation).
        formulation: "coupled" (default; task-slot variables, executable) or
            "paper" (per-resource variables, Lemma-2-faithful).
        per_slot_caps: bound per-slot grants by the job's parallelism.
        backend: LP backend name from the solver registry
            (``repro.lp.available_backends()``; default "highs").
            "fastsolve" lowers structured round subproblems to a
            combinatorial parametric max-flow and falls back to "highs"
            for instances without the interval structure.
        max_lexmin_rounds: minimax refinement rounds (None = exact lexmin;
            small values keep re-planning fast with near-identical plans).
        horizon_slots: hard cap on the planning horizon (None = plan until
            the latest adjusted deadline).
        front_load: tie-break balanced optima toward earlier slots (see
            :func:`repro.core.lexmin.lexmin_schedule`); False is the
            paper-faithful behaviour where only the deadline slack guards
            against last-minute allocations.
        plan_cache: memoise solved plans by a canonical fingerprint of
            (remaining demands, capacity, config) so unchanged job mixes —
            in particular recurring-workflow instances — skip the LP ladder
            entirely.  Plans are deterministic functions of the fingerprint,
            so cached plans are identical to cold solves.
        plan_cache_size: LRU capacity of the plan cache.
        warm_start: on a cache miss, seed the lexmin ladder from the
            previous solve's utilisation skyline (see
            :class:`repro.core.lexmin.LexminWarmHint`).  The minimax theta
            is still solved exactly and a failed exactness check falls back
            to the cold ladder, so plans stay minimax-optimal.
        solve_budget_s: optional wall-time budget per LP solve (the solver
            guardrail).  A solve that exceeds it — or fails on every
            backend — raises :class:`~repro.lp.solver.SolverFailure` out of
            :meth:`FlowTimePlanner.plan`; the FlowTime scheduler catches it
            and enters degraded mode.  None (default) never times out,
            which is the pre-guardrail behaviour.
    """

    slack_slots: int = 6
    formulation: Mode = "coupled"
    per_slot_caps: bool = True
    backend: str = "highs"
    max_lexmin_rounds: int | None = 4
    horizon_slots: int | None = None
    front_load: bool = True
    plan_cache: bool = True
    plan_cache_size: int = 128
    warm_start: bool = True
    solve_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.slack_slots < 0:
            raise ValueError("slack_slots must be >= 0")
        if self.horizon_slots is not None and self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")


@dataclass(frozen=True)
class JobDemand:
    """Remaining demand of one live deadline-aware job (absolute slots)."""

    job_id: str
    release_slot: int
    deadline_slot: int
    units: int
    unit_demand: ResourceVector
    max_parallel: int

    def min_slots_needed(self) -> int:
        return math.ceil(self.units / self.max_parallel)


class FlowTimePlanner:
    """Planner mapping live demands to an allocation plan.

    The planner remains a *pure function* of its inputs — it maps a
    :class:`~repro.core.replan.PlanRequest` to the same
    :class:`~repro.core.allocation.AllocationPlan` a fresh instance would
    produce — but it carries two pieces of memoisation state to keep the
    re-planning hot path incremental: a fingerprint-keyed
    :class:`~repro.core.replan.PlanCache` (identical plans are reused
    outright) and the previous solve's utilisation skyline (used to
    warm-start the lexmin ladder on near-identical job mixes).  Both are
    transparent: disabling them via :class:`PlannerConfig` changes latency,
    never the plan's recorded metrics.
    """

    def __init__(self, config: PlannerConfig | None = None):
        self.config = config or PlannerConfig()
        self.plan_cache = PlanCache(maxsize=self.config.plan_cache_size)
        # Previous cold solve's skyline in absolute coordinates:
        # (resources, theta, {(absolute_slot, r_index): utilisation}).
        self._skyline: tuple[tuple[str, ...], float, dict] | None = None

    # -- window preparation ---------------------------------------------------

    def _entry_for(
        self, demand: JobDemand, now: int, *, slack: int
    ) -> ScheduleEntry:
        """Relative-slot entry with slack applied and feasibility repaired."""
        release = max(demand.release_slot - now, 0)
        deadline = demand.deadline_slot - now
        need = demand.min_slots_needed()

        if slack and deadline - slack - release >= need:
            deadline -= slack
        # Overdue or too-tight windows are extended just enough: the paper's
        # robustness story is that re-planning absorbs estimation drift
        # instead of dropping jobs.
        deadline = max(deadline, release + need, release + 1)
        return ScheduleEntry(
            job_id=demand.job_id,
            release=release,
            deadline=deadline,
            units=demand.units,
            unit_demand=demand.unit_demand,
            max_parallel=demand.max_parallel,
        )

    def _caps_array(
        self, capacity: ClusterCapacity, now: int, horizon: int
    ) -> np.ndarray:
        return caps_array(capacity, now, horizon)

    # -- planning ----------------------------------------------------------------

    def plan(
        self,
        request: PlanRequest | int,
        demands: list[JobDemand] | None = None,
        capacity: ClusterCapacity | None = None,
    ) -> AllocationPlan:
        """Compute an integral allocation plan for the live deadline jobs.

        Takes a single :class:`~repro.core.replan.PlanRequest`.  (The old
        positional signature ``plan(now_slot, demands, capacity)`` still
        works for one release but emits a :class:`DeprecationWarning`.)

        Returns an :class:`AllocationPlan` anchored at the request's
        ``now_slot``.  When there are no demands the plan is empty
        (everything goes to ad-hoc jobs).  ``plan.degraded`` is True when
        the LP was infeasible even with relaxed windows and EDF
        water-filling was used.
        """
        if not isinstance(request, PlanRequest):
            warnings.warn(
                "FlowTimePlanner.plan(now_slot, demands, capacity) is "
                "deprecated; pass a single PlanRequest instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if demands is None or capacity is None:
                raise TypeError(
                    "legacy plan() call requires now_slot, demands and capacity"
                )
            request = PlanRequest(
                now_slot=request, demands=tuple(demands), capacity=capacity
            )
        config = request.config or self.config
        obs = current_obs()
        with obs.span("sched.plan"):
            if not config.plan_cache:
                return self._plan(request, config)
            key = request.fingerprint(config)
            cached = self.plan_cache.get(key)
            if cached is not None:
                obs.counter("sched.plan.cache.hit").inc()
                return cached.materialise(request)
            obs.counter("sched.plan.cache.miss").inc()
            plan = self._plan(request, config)
            self.plan_cache.put(key, CachedPlan.from_plan(plan, request))
            return plan

    # -- warm-start memory -------------------------------------------------------

    def _remember_skyline(
        self,
        now_slot: int,
        resources: tuple[str, ...],
        problem: ScheduleProblem,
        result: LexminResult,
    ) -> None:
        """Store the solve's utilisation skyline in absolute coordinates."""
        if result.utilisation is None:
            return
        levels = {
            (now_slot + slot, r): float(result.utilisation[k])
            for k, (slot, r) in enumerate(problem.util_cells)
        }
        self._skyline = (resources, result.minimax, levels)

    def _warm_hint(
        self, now_slot: int, resources: tuple[str, ...]
    ) -> LexminWarmHint | None:
        """Previous skyline re-anchored at ``now_slot``, if compatible."""
        if self._skyline is None:
            return None
        stored_resources, theta, levels = self._skyline
        if stored_resources != resources:
            return None
        relative = {
            (slot - now_slot, r): level
            for (slot, r), level in levels.items()
            if slot >= now_slot
        }
        if not relative:
            return None
        return LexminWarmHint(theta=theta, levels=relative)

    def _plan(self, request: PlanRequest, config: PlannerConfig) -> AllocationPlan:
        now_slot = request.now_slot
        demands = request.demands
        capacity = request.capacity
        resources = capacity.resources
        if not demands:
            return AllocationPlan.empty(now_slot, 1, resources)

        def clamp(entries: list[ScheduleEntry], horizon: int) -> list[ScheduleEntry]:
            return [
                replace(
                    e,
                    release=min(e.release, horizon - 1),
                    deadline=min(max(e.deadline, e.release + 1), horizon),
                )
                for e in entries
            ]

        slacked = [
            self._entry_for(d, now_slot, slack=config.slack_slots)
            for d in demands
        ]
        plain = [self._entry_for(d, now_slot, slack=0) for d in demands]
        horizon = max(entry.deadline for entry in plain)
        if config.horizon_slots is not None:
            horizon = min(horizon, config.horizon_slots)
        # An incremental relaxation ladder: drop the slack first, then — if
        # the cluster is jointly over-committed — extend *only* the windows
        # that a max-placement LP proves cannot hold their work (optimal
        # triage: feasible jobs keep their urgency, like EDF sacrificing the
        # least-urgent work, but chosen by an LP), and finally stretch
        # everything.  A relax-everything jump would schedule like there
        # were no deadlines at all.
        stretched = int(horizon * 3 / 2) + 1
        ladder: list[tuple[list[ScheduleEntry], int]] = []
        if config.slack_slots:
            ladder.append((clamp(slacked, horizon), horizon))
        ladder.append((clamp(plain, horizon), horizon))
        relaxed, relaxed_horizon = self._shortfall_relax(
            clamp(plain, horizon), now_slot, capacity, horizon, config
        )
        ladder.append((relaxed, relaxed_horizon))
        relaxed2, relaxed2_horizon = self._shortfall_relax(
            relaxed, now_slot, capacity, relaxed_horizon, config
        )
        ladder.append((relaxed2, relaxed2_horizon))
        ladder.append(
            ([replace(e, deadline=stretched) for e in clamp(plain, stretched)], stretched)
        )

        for rung, (attempt_entries, attempt_horizon) in enumerate(ladder):
            caps = caps_array(capacity, now_slot, attempt_horizon)
            problem = build_schedule_problem(
                attempt_entries,
                caps,
                resources,
                mode=config.formulation,
                per_slot_caps=config.per_slot_caps,
            )
            # The stored skyline came from whichever rung produced the last
            # plan — almost always the first — so only the first rung can
            # meaningfully reuse it; relaxed rungs see different windows.
            hint = (
                self._warm_hint(now_slot, resources)
                if config.warm_start and rung == 0
                else None
            )
            result = lexmin_schedule(
                problem,
                backend=config.backend,
                max_rounds=config.max_lexmin_rounds,
                front_load=config.front_load,
                warm_hint=hint,
                solve_budget_s=config.solve_budget_s,
            )
            if result.is_optimal:
                grants = self._quantize(problem, result.x, config)
                if grants is not None:
                    if result.warm:
                        current_obs().counter("sched.plan.warm").inc()
                    if config.warm_start:
                        self._remember_skyline(
                            now_slot, resources, problem, result
                        )
                    return AllocationPlan(
                        origin_slot=now_slot,
                        horizon=attempt_horizon,
                        resources=resources,
                        grants=grants,
                        unit_demands={
                            e.job_id: e.unit_demand for e in attempt_entries
                        },
                        degraded=False,
                        minimax=result.minimax,
                    )

        # The cluster is over-committed beyond what window relaxation can
        # absorb: EDF water-filling over the *original* windows keeps the
        # most urgent work first and always makes progress.
        current_obs().counter("sched.plan.degraded").inc()
        caps = caps_array(capacity, now_slot, stretched)
        grants = greedy_fill(clamp(plain, stretched), caps, resources)
        return AllocationPlan(
            origin_slot=now_slot,
            horizon=stretched,
            resources=resources,
            grants=grants,
            unit_demands={e.job_id: e.unit_demand for e in plain},
            degraded=True,
        )

    def _shortfall_relax(
        self,
        entries: list[ScheduleEntry],
        now_slot: int,
        capacity: ClusterCapacity,
        horizon: int,
        config: PlannerConfig | None = None,
    ) -> tuple[list[ScheduleEntry], int]:
        """Extend only the windows that provably cannot hold their work.

        Solves a *max-placement* LP (demands relaxed to ``<=``, maximise the
        total placed) under the current windows and caps; each job's
        shortfall is the work the optimum could not place.  Jobs with a
        shortfall get their deadline pushed out just far enough to absorb it
        at full parallelism; everyone else keeps their window.  Returns the
        relaxed entries and the (possibly grown) horizon.
        """
        from repro.lp.problem import LinearProgram
        from repro.lp.solver import SolverFailure, solve_lp

        config = config or self.config
        caps = caps_array(capacity, now_slot, horizon)
        problem = build_schedule_problem(
            entries,
            caps,
            capacity.resources,
            mode="coupled",
            per_slot_caps=True,
        )
        cap_rows = problem.cell_caps()
        from scipy import sparse

        lp = LinearProgram(
            c=-np.ones(problem.n_vars),
            a_ub=sparse.vstack([problem.a_util, problem.a_eq]).tocsr(),
            b_ub=np.concatenate([cap_rows, problem.b_eq]),
            lb=np.zeros(problem.n_vars),
            ub=problem.var_ub,
        )
        try:
            sol = solve_lp(
                lp, backend=config.backend, time_budget_s=config.solve_budget_s
            )
        except SolverFailure:
            # Window relaxation is best-effort triage: without the shortfall
            # oracle we keep the windows as-is and let the ladder's blanket
            # stretch (or degraded mode) take over.
            return entries, horizon
        if not sol.is_optimal:  # defensive: max-placement is always feasible
            return entries, horizon
        placed = np.asarray(problem.a_eq @ sol.x).ravel()
        relaxed: list[ScheduleEntry] = []
        new_horizon = horizon
        for entry, got, want in zip(problem.entries, placed, problem.b_eq):
            shortfall = want - got
            if shortfall > 0.5:
                extra = math.ceil(shortfall / entry.max_parallel) + 1
                deadline = entry.deadline + extra
                new_horizon = max(new_horizon, deadline)
                relaxed.append(replace(entry, deadline=deadline))
            else:
                relaxed.append(entry)
        return relaxed, new_horizon

    def _quantize(
        self, problem, x, config: PlannerConfig | None = None
    ) -> dict[str, np.ndarray] | None:
        """Integral grants from the fractional solution, or None on failure."""
        config = config or self.config
        if config.formulation == "coupled":
            try:
                return quantize_coupled(problem, x)
            except IntegralizationError:
                return None
        return self._units_from_paper(problem, x)

    @staticmethod
    def _paper_fractional_units(problem, x) -> dict[tuple[int, int], float]:
        """Fractional task-slot units implied by paper-mode variables.

        A task-slot needs all its resources in the same slot, so the
        fractional unit count at (entry, slot) is the minimum across
        resources of ``x_it^r / demand_r`` — the conversion a
        container-based executor applies.
        """
        per_cell: dict[tuple[int, int], float] = {}
        r_names = problem.resources
        for var, (e_index, slot, r) in enumerate(problem.var_meta):
            demand = problem.entries[e_index].unit_demand[r_names[r]]
            if not demand:
                continue
            value = max(float(x[var]), 0.0) / demand
            key = (e_index, slot)
            per_cell[key] = min(per_cell.get(key, math.inf), value)
        return per_cell

    def _units_from_paper(self, problem, x) -> dict[str, np.ndarray]:
        """Integral task-slot grants from a paper-mode solution.

        The per-resource LP can decouple resources (cpu skewed to one slot,
        memory to another), which would lose units under a pure min-floor
        conversion.  We therefore rebuild the *coupled* problem over the
        same entries and run the shared quantiser on the fractional unit
        counts, which re-places the lost remainders within capacity.  If
        even that fails (pathological decoupling) we fall back to the plain
        floor conversion — the event-driven re-plan picks up the shortfall.
        """
        per_cell = self._paper_fractional_units(problem, x)
        coupled = build_schedule_problem(
            problem.entries,
            problem.caps,
            problem.resources,
            mode="coupled",
            per_slot_caps=True,
        )
        y = np.zeros(coupled.n_vars)
        for var, (e_index, slot, _r) in enumerate(coupled.var_meta):
            y[var] = per_cell.get((e_index, slot), 0.0)
        try:
            return quantize_coupled(coupled, y)
        except IntegralizationError:
            horizon = problem.horizon
            grants = {
                entry.job_id: np.zeros(horizon, dtype=int)
                for entry in problem.entries
            }
            for (e_index, slot), value in per_cell.items():
                entry = problem.entries[e_index]
                units = int(math.floor(value + 1e-9))
                if units:
                    grants[entry.job_id][slot] = min(
                        units, entry.max_parallel, entry.units
                    )
            return grants
