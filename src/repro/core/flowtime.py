"""The FlowTime planner: decomposed windows in, executable plan out.

This is the paper's Sec. V/VI engine.  Every time the job mix changes (a job
arrives, becomes ready, or completes) the scheduler calls :meth:`plan` with
the *remaining* demands of all live deadline-aware jobs.  The planner:

1. applies the **deadline slack** (Sec. VII-2): demands are required
   ``slack_slots`` before the decomposed deadline whenever the tightened
   window can still hold the job;
2. repairs per-job infeasibility (overdue jobs, windows too small for the
   remaining work) by extending windows just enough — the dynamic-replanning
   answer to estimation errors;
3. solves the lexicographic minimax LP (Sec. V-B) to get the flattest
   possible deadline-work skyline, so ad-hoc jobs get the most leftover
   capacity as early as possible;
4. re-quantises to an integral plan; if the LP is infeasible even after
   relaxing all windows (the cluster is over-committed) it degrades to EDF
   water-filling rather than failing.

The planner is pure: no simulator state, no clocks — it maps (now, demands,
capacity) to an :class:`~repro.core.allocation.AllocationPlan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.allocation import (
    AllocationPlan,
    IntegralizationError,
    greedy_fill,
    quantize_coupled,
)
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import Mode, ScheduleEntry, build_schedule_problem
from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.obs import current_obs


@dataclass(frozen=True)
class PlannerConfig:
    """Tunables of the FlowTime planner.

    Attributes:
        slack_slots: deadline slack in slots (the paper's default is 60 s =
            6 slots of 10 s).  0 disables slack (the Fig. 5 ablation).
        formulation: "coupled" (default; task-slot variables, executable) or
            "paper" (per-resource variables, Lemma-2-faithful).
        per_slot_caps: bound per-slot grants by the job's parallelism.
        backend: LP backend ("highs" or "simplex").
        max_lexmin_rounds: minimax refinement rounds (None = exact lexmin;
            small values keep re-planning fast with near-identical plans).
        horizon_slots: hard cap on the planning horizon (None = plan until
            the latest adjusted deadline).
        front_load: tie-break balanced optima toward earlier slots (see
            :func:`repro.core.lexmin.lexmin_schedule`); False is the
            paper-faithful behaviour where only the deadline slack guards
            against last-minute allocations.
    """

    slack_slots: int = 6
    formulation: Mode = "coupled"
    per_slot_caps: bool = True
    backend: str = "highs"
    max_lexmin_rounds: int | None = 4
    horizon_slots: int | None = None
    front_load: bool = True

    def __post_init__(self) -> None:
        if self.slack_slots < 0:
            raise ValueError("slack_slots must be >= 0")
        if self.horizon_slots is not None and self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")


@dataclass(frozen=True)
class JobDemand:
    """Remaining demand of one live deadline-aware job (absolute slots)."""

    job_id: str
    release_slot: int
    deadline_slot: int
    units: int
    unit_demand: ResourceVector
    max_parallel: int

    def min_slots_needed(self) -> int:
        return math.ceil(self.units / self.max_parallel)


class FlowTimePlanner:
    """Stateless planner mapping live demands to an allocation plan."""

    def __init__(self, config: PlannerConfig | None = None):
        self.config = config or PlannerConfig()

    # -- window preparation ---------------------------------------------------

    def _entry_for(
        self, demand: JobDemand, now: int, *, slack: int
    ) -> ScheduleEntry:
        """Relative-slot entry with slack applied and feasibility repaired."""
        release = max(demand.release_slot - now, 0)
        deadline = demand.deadline_slot - now
        need = demand.min_slots_needed()

        if slack and deadline - slack - release >= need:
            deadline -= slack
        # Overdue or too-tight windows are extended just enough: the paper's
        # robustness story is that re-planning absorbs estimation drift
        # instead of dropping jobs.
        deadline = max(deadline, release + need, release + 1)
        return ScheduleEntry(
            job_id=demand.job_id,
            release=release,
            deadline=deadline,
            units=demand.units,
            unit_demand=demand.unit_demand,
            max_parallel=demand.max_parallel,
        )

    def _caps_array(
        self, capacity: ClusterCapacity, now: int, horizon: int
    ) -> np.ndarray:
        resources = capacity.resources
        caps = np.zeros((horizon, len(resources)))
        for k in range(horizon):
            cap_vec = capacity.at(now + k)
            for r, name in enumerate(resources):
                caps[k, r] = cap_vec[name]
        return caps

    # -- planning ----------------------------------------------------------------

    def plan(
        self,
        now_slot: int,
        demands: list[JobDemand],
        capacity: ClusterCapacity,
    ) -> AllocationPlan:
        """Compute an integral allocation plan for the live deadline jobs.

        Returns an :class:`AllocationPlan` anchored at ``now_slot``.  When
        there are no demands the plan is empty (everything goes to ad-hoc
        jobs).  ``plan.degraded`` is True when the LP was infeasible even
        with relaxed windows and EDF water-filling was used.
        """
        with current_obs().span("sched.plan"):
            return self._plan(now_slot, demands, capacity)

    def _plan(
        self,
        now_slot: int,
        demands: list[JobDemand],
        capacity: ClusterCapacity,
    ) -> AllocationPlan:
        resources = capacity.resources
        if not demands:
            return AllocationPlan.empty(now_slot, 1, resources)

        def clamp(entries: list[ScheduleEntry], horizon: int) -> list[ScheduleEntry]:
            return [
                replace(
                    e,
                    release=min(e.release, horizon - 1),
                    deadline=min(max(e.deadline, e.release + 1), horizon),
                )
                for e in entries
            ]

        slacked = [
            self._entry_for(d, now_slot, slack=self.config.slack_slots)
            for d in demands
        ]
        plain = [self._entry_for(d, now_slot, slack=0) for d in demands]
        horizon = max(entry.deadline for entry in plain)
        if self.config.horizon_slots is not None:
            horizon = min(horizon, self.config.horizon_slots)
        # An incremental relaxation ladder: drop the slack first, then — if
        # the cluster is jointly over-committed — extend *only* the windows
        # that a max-placement LP proves cannot hold their work (optimal
        # triage: feasible jobs keep their urgency, like EDF sacrificing the
        # least-urgent work, but chosen by an LP), and finally stretch
        # everything.  A relax-everything jump would schedule like there
        # were no deadlines at all.
        stretched = int(horizon * 3 / 2) + 1
        ladder: list[tuple[list[ScheduleEntry], int]] = []
        if self.config.slack_slots:
            ladder.append((clamp(slacked, horizon), horizon))
        ladder.append((clamp(plain, horizon), horizon))
        relaxed, relaxed_horizon = self._shortfall_relax(
            clamp(plain, horizon), now_slot, capacity, horizon
        )
        ladder.append((relaxed, relaxed_horizon))
        relaxed2, relaxed2_horizon = self._shortfall_relax(
            relaxed, now_slot, capacity, relaxed_horizon
        )
        ladder.append((relaxed2, relaxed2_horizon))
        ladder.append(
            ([replace(e, deadline=stretched) for e in clamp(plain, stretched)], stretched)
        )

        for attempt_entries, attempt_horizon in ladder:
            caps = self._caps_array(capacity, now_slot, attempt_horizon)
            problem = build_schedule_problem(
                attempt_entries,
                caps,
                resources,
                mode=self.config.formulation,
                per_slot_caps=self.config.per_slot_caps,
            )
            result = lexmin_schedule(
                problem,
                backend=self.config.backend,
                max_rounds=self.config.max_lexmin_rounds,
                front_load=self.config.front_load,
            )
            if result.is_optimal:
                grants = self._quantize(problem, result.x)
                if grants is not None:
                    return AllocationPlan(
                        origin_slot=now_slot,
                        horizon=attempt_horizon,
                        resources=resources,
                        grants=grants,
                        unit_demands={
                            e.job_id: e.unit_demand for e in attempt_entries
                        },
                        degraded=False,
                        minimax=result.minimax,
                    )

        # The cluster is over-committed beyond what window relaxation can
        # absorb: EDF water-filling over the *original* windows keeps the
        # most urgent work first and always makes progress.
        current_obs().counter("sched.plan.degraded").inc()
        caps = self._caps_array(capacity, now_slot, stretched)
        grants = greedy_fill(clamp(plain, stretched), caps, resources)
        return AllocationPlan(
            origin_slot=now_slot,
            horizon=stretched,
            resources=resources,
            grants=grants,
            unit_demands={e.job_id: e.unit_demand for e in plain},
            degraded=True,
        )

    def _shortfall_relax(
        self,
        entries: list[ScheduleEntry],
        now_slot: int,
        capacity: ClusterCapacity,
        horizon: int,
    ) -> tuple[list[ScheduleEntry], int]:
        """Extend only the windows that provably cannot hold their work.

        Solves a *max-placement* LP (demands relaxed to ``<=``, maximise the
        total placed) under the current windows and caps; each job's
        shortfall is the work the optimum could not place.  Jobs with a
        shortfall get their deadline pushed out just far enough to absorb it
        at full parallelism; everyone else keeps their window.  Returns the
        relaxed entries and the (possibly grown) horizon.
        """
        from repro.lp.problem import LinearProgram
        from repro.lp.solver import solve_lp

        caps = self._caps_array(capacity, now_slot, horizon)
        problem = build_schedule_problem(
            entries,
            caps,
            capacity.resources,
            mode="coupled",
            per_slot_caps=True,
        )
        cap_rows = np.array(
            [problem.cap_of_cell(k) for k in range(len(problem.util_cells))]
        )
        from scipy import sparse

        lp = LinearProgram(
            c=-np.ones(problem.n_vars),
            a_ub=sparse.vstack([problem.a_util, problem.a_eq]).tocsr(),
            b_ub=np.concatenate([cap_rows, problem.b_eq]),
            lb=np.zeros(problem.n_vars),
            ub=problem.var_ub,
        )
        sol = solve_lp(lp, backend=self.config.backend)
        if not sol.is_optimal:  # defensive: max-placement is always feasible
            return entries, horizon
        placed = np.asarray(problem.a_eq @ sol.x).ravel()
        relaxed: list[ScheduleEntry] = []
        new_horizon = horizon
        for entry, got, want in zip(problem.entries, placed, problem.b_eq):
            shortfall = want - got
            if shortfall > 0.5:
                extra = math.ceil(shortfall / entry.max_parallel) + 1
                deadline = entry.deadline + extra
                new_horizon = max(new_horizon, deadline)
                relaxed.append(replace(entry, deadline=deadline))
            else:
                relaxed.append(entry)
        return relaxed, new_horizon

    def _quantize(self, problem, x) -> dict[str, np.ndarray] | None:
        """Integral grants from the fractional solution, or None on failure."""
        if self.config.formulation == "coupled":
            try:
                return quantize_coupled(problem, x)
            except IntegralizationError:
                return None
        return self._units_from_paper(problem, x)

    @staticmethod
    def _paper_fractional_units(problem, x) -> dict[tuple[int, int], float]:
        """Fractional task-slot units implied by paper-mode variables.

        A task-slot needs all its resources in the same slot, so the
        fractional unit count at (entry, slot) is the minimum across
        resources of ``x_it^r / demand_r`` — the conversion a
        container-based executor applies.
        """
        per_cell: dict[tuple[int, int], float] = {}
        r_names = problem.resources
        for var, (e_index, slot, r) in enumerate(problem.var_meta):
            demand = problem.entries[e_index].unit_demand[r_names[r]]
            if not demand:
                continue
            value = max(float(x[var]), 0.0) / demand
            key = (e_index, slot)
            per_cell[key] = min(per_cell.get(key, math.inf), value)
        return per_cell

    def _units_from_paper(self, problem, x) -> dict[str, np.ndarray]:
        """Integral task-slot grants from a paper-mode solution.

        The per-resource LP can decouple resources (cpu skewed to one slot,
        memory to another), which would lose units under a pure min-floor
        conversion.  We therefore rebuild the *coupled* problem over the
        same entries and run the shared quantiser on the fractional unit
        counts, which re-places the lost remainders within capacity.  If
        even that fails (pathological decoupling) we fall back to the plain
        floor conversion — the event-driven re-plan picks up the shortfall.
        """
        per_cell = self._paper_fractional_units(problem, x)
        coupled = build_schedule_problem(
            problem.entries,
            problem.caps,
            problem.resources,
            mode="coupled",
            per_slot_caps=True,
        )
        y = np.zeros(coupled.n_vars)
        for var, (e_index, slot, _r) in enumerate(coupled.var_meta):
            y[var] = per_cell.get((e_index, slot), 0.0)
        try:
            return quantize_coupled(coupled, y)
        except IntegralizationError:
            horizon = problem.horizon
            grants = {
                entry.job_id: np.zeros(horizon, dtype=int)
                for entry in problem.entries
            }
            for (e_index, slot), value in per_cell.items():
                entry = problem.entries[e_index]
                units = int(math.floor(value + 1e-9))
                if units:
                    grants[entry.job_id][slot] = min(
                        units, entry.max_parallel, entry.units
                    )
            return grants
