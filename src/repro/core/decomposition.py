"""Resource-demand-based deadline decomposition (Sec. IV-B).

Given a workflow ``W = {Q, ws, wd, P}`` this module produces a per-job
scheduling window.  The algorithm:

1. Compute the grouped topological node sets (Sec. IV-A).
2. Guarantee each node set its *minimum runtime* — the largest minimum
   runtime of any job in the set (optionally cluster-aware: a job with more
   tasks than fit in the cluster needs several waves).
3. Distribute the *remaining* time (workflow window minus the sum of minimum
   runtimes) across node sets proportionally to each set's total
   capacity-normalised resource demand (tasks x duration x per-task demand,
   summed over the set).  This is the paper's key departure from
   critical-path decomposition: a wide level of parallel jobs needs more
   wall-clock time on a finite cluster even if each job is short
   (Fig. 3: the middle set gets (n-1)/(n+1) of the deadline, not 1/3).
4. If the remaining time is negative — the workflow window is tighter than
   the sum of minimum runtimes — fall back to critical-path decomposition
   (footnote 1 of the paper).

All boundaries are integral slots; rounding never steals a set's minimum
runtime and the last set always ends exactly at the workflow deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.critical_path import critical_path_windows
from repro.core.decomposition_types import JobWindow
from repro.core.toposort import grouped_topological_sets
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.obs import current_obs

__all__ = ["DecompositionResult", "JobWindow", "decompose_deadline"]


@dataclass(frozen=True)
class DecompositionResult:
    """Windows for every job of one workflow plus provenance metadata.

    Attributes:
        workflow_id: which workflow was decomposed.
        windows: per-job windows.
        node_sets: the grouped topological sets used (empty when the
            critical-path fallback was taken).
        used_fallback: True when the window was tighter than the sum of
            minimum runtimes and the critical-path scheme was used instead.
        slack_ratio: remaining time / window (0 when fallback).
    """

    workflow_id: str
    windows: Mapping[str, JobWindow]
    node_sets: tuple[tuple[str, ...], ...]
    used_fallback: bool
    slack_ratio: float

    def window(self, job_id: str) -> JobWindow:
        return self.windows[job_id]


def _set_min_runtime(
    workflow: Workflow,
    node_set: tuple[str, ...],
    capacity: ClusterCapacity | None,
    cluster_aware: bool,
) -> int:
    """Minimum runtime of a node set = slowest member's minimum runtime.

    With ``cluster_aware`` the whole set's tasks share the cluster, so the
    bound also accounts for the set's aggregate work not fitting in one wave.
    """
    cap = capacity.base if (cluster_aware and capacity is not None) else None
    per_job = max(
        workflow.job(job_id).min_runtime_slots(cap) for job_id in node_set
    )
    if cap is None:
        return per_job
    # Aggregate lower bound: total normalised work of the set cannot finish
    # faster than its most loaded resource allows.
    import math

    aggregate = 1
    for resource in capacity.resources:
        total = sum(
            workflow.job(job_id).tasks.total_demand(resource) for job_id in node_set
        )
        amount = capacity.base[resource]
        if amount > 0 and total > 0:
            aggregate = max(aggregate, math.ceil(total / amount))
    return max(per_job, aggregate)


def decompose_deadline(
    workflow: Workflow,
    capacity: ClusterCapacity,
    *,
    cluster_aware: bool = True,
) -> DecompositionResult:
    """Decompose one workflow's deadline into per-job windows.

    Args:
        workflow: the workflow to decompose.
        capacity: cluster capacity; used both for the cluster-aware minimum
            runtimes and for normalising resource demands across types.
        cluster_aware: when True (default), minimum runtimes account for the
            cluster being too small to run all of a set's tasks in one wave.
            False reproduces the paper's simpler per-job bound.

    Returns:
        A :class:`DecompositionResult`; inspect ``used_fallback`` to see
        whether the critical-path fallback was taken.
    """
    with current_obs().span("decompose"):
        return _decompose_deadline(workflow, capacity, cluster_aware=cluster_aware)


def _decompose_deadline(
    workflow: Workflow,
    capacity: ClusterCapacity,
    *,
    cluster_aware: bool,
) -> DecompositionResult:
    node_sets = grouped_topological_sets(workflow)
    min_runtimes = [
        _set_min_runtime(workflow, node_set, capacity, cluster_aware)
        for node_set in node_sets
    ]
    window = workflow.window_slots
    remaining = window - sum(min_runtimes)

    if remaining < 0:
        current_obs().counter("decompose.fallback").inc()
        windows = critical_path_windows(
            workflow, capacity, cluster_aware=cluster_aware
        )
        return DecompositionResult(
            workflow_id=workflow.workflow_id,
            windows=windows,
            node_sets=node_sets,
            used_fallback=True,
            slack_ratio=0.0,
        )

    weights = [
        sum(
            workflow.job(job_id).normalized_demand(capacity.base)
            for job_id in node_set
        )
        for node_set in node_sets
    ]
    total_weight = sum(weights)
    if total_weight <= 0:  # demands are always positive; defensive
        weights = [1.0] * len(node_sets)
        total_weight = float(len(node_sets))

    # Real-valued durations, then integral boundaries with two repair passes.
    durations = [
        m + remaining * w / total_weight for m, w in zip(min_runtimes, weights)
    ]
    boundaries: list[int] = []
    cumulative = 0.0
    floor_so_far = 0  # sum of minimum runtimes up to and including set k
    for duration, minimum in zip(durations, min_runtimes):
        cumulative += duration
        floor_so_far += minimum
        boundary = round(cumulative)
        if boundaries:
            boundary = max(boundary, boundaries[-1] + minimum)
        else:
            boundary = max(boundary, minimum)
        boundaries.append(boundary)
    # Pin the last boundary to the workflow deadline, then sweep backwards so
    # no set's window shrinks below its minimum runtime.
    boundaries[-1] = window
    for k in range(len(boundaries) - 2, -1, -1):
        boundaries[k] = min(boundaries[k], boundaries[k + 1] - min_runtimes[k + 1])

    windows: dict[str, JobWindow] = {}
    start = workflow.start_slot
    for node_set, boundary in zip(node_sets, boundaries):
        end = workflow.start_slot + boundary
        for job_id in node_set:
            windows[job_id] = JobWindow(
                job_id=job_id, release_slot=start, deadline_slot=end
            )
        start = end

    return DecompositionResult(
        workflow_id=workflow.workflow_id,
        windows=windows,
        node_sets=node_sets,
        used_fallback=False,
        slack_ratio=remaining / window if window else 0.0,
    )
