"""Lexicographic minimax solve of the scheduling LP (Sec. V-B).

The paper proves (Lemma 1) that the lexicographic minimax objective
``lexmin max_t,r z_t^r / C_t^r`` can be scalarised as ``min sum k^{z/C}``
and (Lemma 2) that the constraint matrix is totally unimodular, so one LP
solve suffices *in exact arithmetic*.  The scalarisation is numerically
unusable at real sizes (``k = |T||R|`` is in the hundreds, and ``k^u``
overflows doubles), so — like production implementations of minimax fair
allocation — we compute the same optimum iteratively:

1. Solve ``min theta`` subject to ``z_t^r <= theta * C_t^r`` over the
   *active* cells, plus the demand equalities, per-variable bounds, and the
   hard capacity rows ``z <= C``.
2. Cells that must be saturated at ``theta*`` in every optimum (identified
   by a non-zero dual multiplier; if degeneracy hides the duals, by being at
   ``theta*``) are *frozen*: their load is capped at ``theta* C_t^r``.
3. Repeat on the remaining cells until all are frozen or ``max_rounds`` is
   hit (remaining cells then freeze at the last ``theta*``).
4. A final solve minimises the total normalised load under the frozen caps,
   pinning one balanced representative optimum.

The first round's ``theta*`` is exactly the paper's ``max z/C`` optimum;
subsequent rounds refine lower-order components of the sorted utilisation
vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.core.lp_formulation import ScheduleProblem
from repro.lp.problem import LinearProgram, LPStatus
from repro.lp.solver import SolverFailure, solve_lp
from repro.obs import current_obs

_DUAL_TOL = 1e-7
_THETA_TOL = 1e-9
_FREEZE_RELAX = 1e-7  # relative slack added to frozen caps (numerical safety)


@dataclass(frozen=True)
class LexminWarmHint:
    """Seed for a warm-started lexmin solve: the previous solve's skyline.

    The HiGHS backend exposes no basis warm-start, so the reusable artefact
    of a solve is its *level vector*: the per-cell normalised loads of the
    final balanced allocation.  When consecutive solves see near-identical
    job mixes, that skyline is already (near-)lexmin-optimal — imposing it
    as frozen caps reduces the whole ladder to two LPs (one exact theta
    solve, one balancing solve) instead of up to ``max_rounds + 1``.

    Attributes:
        theta: the previous solve's minimax ``max z/C``.
        levels: per-cell utilisation ``z/C`` keyed by ``(slot, r_index)``
            in the *problem's* relative coordinates (callers re-anchor
            absolute slots before building the hint).
    """

    theta: float
    levels: Mapping[tuple[int, int], float]


@dataclass(frozen=True)
class LexminResult:
    """Outcome of a lexicographic minimax schedule solve.

    Attributes:
        status: "optimal" or "infeasible".
        x: fractional allocation variables (None when infeasible).
        minimax: the paper's objective ``max_t,r z/C`` (first-round theta).
        thetas: theta value of every round, non-increasing.
        rounds: number of minimax rounds performed.
        utilisation: per-cell ``z/C`` of the returned allocation.
        warm: True when the solve was completed from a
            :class:`LexminWarmHint` (round-1 theta is still solved exactly;
            the refinement rounds were replaced by the hinted skyline).
    """

    status: str
    x: Optional[np.ndarray] = None
    minimax: float = float("nan")
    thetas: tuple[float, ...] = ()
    rounds: int = 0
    utilisation: Optional[np.ndarray] = field(default=None, repr=False)
    warm: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def _cell_caps(problem: ScheduleProblem) -> np.ndarray:
    return problem.cell_caps()


def build_round_lp(
    problem: ScheduleProblem,
    active: Sequence[int],
    frozen_value: np.ndarray,
    caps: np.ndarray,
) -> LinearProgram:
    """One lexmin round subproblem: ``min theta`` over the active cells.

    Variables are the allocation variables plus a trailing theta column.
    Rows, in order: active cells (``load - theta * C <= 0``), frozen cells
    (``load <= frozen_value``), and the hard capacity rows (``load <= C``).
    This is the theta-form interval LP that
    :func:`repro.lp.unimodular.detect_interval_structure` certifies and the
    ``fastsolve`` backend lowers to a max-flow; it is public so tests and
    benchmarks can generate round subproblems without running the ladder.
    """
    n_vars = problem.n_vars
    n_cells = len(problem.util_cells)
    active = list(active)
    active_mat = problem.a_util[active]
    theta_col = sparse.csr_matrix(
        (-caps[active], (range(len(active)), [0] * len(active))),
        shape=(len(active), 1),
    )
    blocks = [sparse.hstack([active_mat, theta_col])]
    b_rows = [np.zeros(len(active))]

    frozen_idx = np.flatnonzero(np.isfinite(frozen_value))
    if frozen_idx.size:
        frozen_mat = sparse.hstack(
            [
                problem.a_util[frozen_idx],
                sparse.csr_matrix((frozen_idx.size, 1)),
            ]
        )
        blocks.append(frozen_mat)
        b_rows.append(frozen_value[frozen_idx])

    # Hard capacity rows (constraint (4)): z <= C for every cell.
    hard = sparse.hstack([problem.a_util, sparse.csr_matrix((n_cells, 1))])
    blocks.append(hard)
    b_rows.append(caps)

    eq_with_theta = sparse.hstack(
        [problem.a_eq, sparse.csr_matrix((problem.a_eq.shape[0], 1))]
    ).tocsr()
    return LinearProgram(
        c=np.concatenate([np.zeros(n_vars), [1.0]]),
        a_ub=sparse.vstack(blocks).tocsr(),
        b_ub=np.concatenate(b_rows),
        a_eq=eq_with_theta,
        b_eq=problem.b_eq,
        lb=np.zeros(n_vars + 1),
        ub=np.concatenate([problem.var_ub, [np.inf]]),
    )


def _balancing_solve(
    problem: ScheduleProblem,
    frozen_value: np.ndarray,
    caps: np.ndarray,
    *,
    backend: str,
    front_load: bool,
    solve_budget_s: float | None = None,
):
    """Final solve: minimise total normalised load under the frozen caps.

    With time-invariant caps the total normalised load is a constant, so a
    small *earliness* term picks the representative optimum that front-loads
    work within the frozen skyline: the minimax value is untouched (the caps
    bound every slot) but estimation noise and joint overload become far
    less likely to turn into deadline misses.
    """
    weights = 1.0 / caps
    c_final = np.asarray(weights @ problem.a_util).ravel()
    if front_load:
        horizon = max(problem.horizon, 1)
        earliness = (problem.var_meta[:, 1] + 1.0) / horizon
        eps = 1e-3 * max(float(np.min(c_final[c_final > 0], initial=1.0)), 1e-6)
        c_final = c_final + eps * earliness
    lp_final = LinearProgram(
        c=c_final,
        a_ub=problem.a_util,
        b_ub=frozen_value,
        a_eq=problem.a_eq,
        b_eq=problem.b_eq,
        lb=np.zeros(problem.n_vars),
        ub=problem.var_ub,
    )
    return solve_lp(lp_final, backend=backend, time_budget_s=solve_budget_s)


def _warm_frozen_caps(
    problem: ScheduleProblem,
    caps: np.ndarray,
    theta: float,
    hint: LexminWarmHint,
    tol: float,
) -> np.ndarray | None:
    """Frozen caps from a warm hint, or None when the hint is unusable.

    The hint only applies when the exact round-1 ``theta`` matches the
    hinted minimax (otherwise the workload shifted enough that the previous
    skyline is stale) and covers every utilisation cell of this problem.
    Each cell is capped at its hinted level — never above ``theta`` or the
    hard capacity — so accepting the warm result can never worsen the
    minimax.
    """
    if not np.isfinite(theta) or not np.isfinite(hint.theta):
        return None
    if abs(theta - hint.theta) > tol * max(abs(theta), 1.0):
        return None
    cap_at_theta = theta * caps * (1.0 + _FREEZE_RELAX) + _FREEZE_RELAX
    frozen = np.empty(len(caps))
    for k, cell in enumerate(problem.util_cells):
        level = hint.levels.get(cell)
        if level is None:
            return None
        cap_at_level = level * caps[k] * (1.0 + _FREEZE_RELAX) + _FREEZE_RELAX
        frozen[k] = min(cap_at_level, cap_at_theta[k], caps[k])
    return frozen


def _finish_warm(
    problem: ScheduleProblem,
    caps: np.ndarray,
    theta: float,
    hint: LexminWarmHint,
    *,
    tol: float,
    backend: str,
    front_load: bool,
    solve_budget_s: float | None = None,
) -> LexminResult | None:
    """Attempt to finish the solve from a warm hint after the exact round 1.

    Returns the warm :class:`LexminResult` when the hinted skyline is
    feasible for the current demands and exact (no cell exceeds theta), or
    None to continue the cold ladder.
    """
    frozen = _warm_frozen_caps(problem, caps, theta, hint, tol)
    if frozen is None:
        return None
    sol = _balancing_solve(
        problem,
        frozen,
        caps,
        backend=backend,
        front_load=front_load,
        solve_budget_s=solve_budget_s,
    )
    if sol.status is not LPStatus.OPTIMAL:
        return None
    x = sol.x
    utilisation = np.asarray(problem.a_util @ x).ravel() / caps
    if float(utilisation.max(initial=0.0)) > theta * (1.0 + tol) + tol:
        return None  # exactness check failed: hint would worsen the minimax
    return LexminResult(
        status="optimal",
        x=x,
        minimax=theta,
        thetas=(theta,),
        rounds=1,
        utilisation=utilisation,
        warm=True,
    )


def lexmin_schedule(
    problem: ScheduleProblem,
    *,
    backend: str = "highs",
    max_rounds: int | None = None,
    tol: float = 1e-6,
    front_load: bool = True,
    warm_hint: LexminWarmHint | None = None,
    solve_budget_s: float | None = None,
) -> LexminResult:
    """Run the iterative lexicographic minimax on a :class:`ScheduleProblem`.

    Args:
        problem: pre-assembled LP structure.
        backend: LP backend name ("highs" or "simplex").
        max_rounds: cap on minimax rounds; ``None`` means run until every
            utilisation cell is frozen (exact lexicographic optimum).
        tol: relative tolerance for saturation detection.
        front_load: break ties among balanced optima toward *earlier* slots
            (a tiny earliness term in the final solve).  The minimax skyline
            is untouched (frozen caps bound every slot) but estimation noise
            is far less likely to turn into last-minute deadline misses.
            False reproduces the paper's formulation verbatim, which leaves
            the choice among optimal vertices to the solver — that is what
            makes the deadline-slack feature of Fig. 5 necessary.
        warm_hint: optional :class:`LexminWarmHint` from a previous solve.
            Round 1 (the exact minimax theta) always runs cold; if the
            hinted theta matches, the hinted skyline replaces the remaining
            refinement rounds and the result is checked for exactness
            (max utilisation must not exceed theta).  Any mismatch falls
            back to the cold ladder, counted as ``lexmin.warm.fallback``.
        solve_budget_s: optional per-LP wall-time budget forwarded to
            :func:`repro.lp.solver.solve_lp`; a blown budget (or a solver
            that fails on every backend) raises
            :class:`~repro.lp.solver.SolverFailure`, which propagates to
            the caller — the FlowTime scheduler's degraded mode handles it.

    Returns:
        A :class:`LexminResult`; ``status == "infeasible"`` means some job's
        demand cannot fit its window under the capacity caps (callers relax
        windows and retry).
    """
    n_cells = len(problem.util_cells)
    n_vars = problem.n_vars
    caps = _cell_caps(problem)
    if np.any(caps <= 0):
        raise ValueError("every utilisation cell must have positive capacity")

    active = list(range(n_cells))
    frozen_value = np.full(n_cells, np.inf)
    thetas: list[float] = []
    rounds = 0

    while active:
        if max_rounds is not None and rounds >= max_rounds:
            break
        lp = build_round_lp(problem, active, frozen_value, caps)
        sol = solve_lp(lp, backend=backend, time_budget_s=solve_budget_s)
        if sol.status is not LPStatus.OPTIMAL:
            if sol.status is LPStatus.INFEASIBLE:
                return LexminResult(status="infeasible")
            raise SolverFailure(  # pragma: no cover - solve_lp raises first
                f"lexmin round failed: {sol.message}",
                backend=backend,
                reason="error",
                elapsed=0.0,
            )
        x_full = sol.x
        theta = float(x_full[-1])
        thetas.append(theta)
        rounds += 1

        if rounds == 1 and warm_hint is not None:
            warm = _finish_warm(
                problem,
                caps,
                theta,
                warm_hint,
                tol=tol,
                backend=backend,
                front_load=front_load,
                solve_budget_s=solve_budget_s,
            )
            if warm is not None:
                return warm
            current_obs().counter("lexmin.warm.fallback").inc()

        loads = np.asarray(problem.a_util[active] @ x_full[:n_vars]).ravel()
        utilisation = loads / caps[active]

        to_freeze: list[int] = []
        if sol.duals_ub is not None:
            duals = sol.duals_ub[: len(active)]
            to_freeze = [
                active[j] for j in range(len(active)) if abs(duals[j]) > _DUAL_TOL
            ]
        if not to_freeze:
            to_freeze = [
                active[j]
                for j in range(len(active))
                if utilisation[j] >= theta - tol * max(theta, 1.0)
            ]
        if not to_freeze:  # defensive: never loop without progress
            to_freeze = list(active)

        cap_at_theta = theta * caps * (1.0 + _FREEZE_RELAX) + _FREEZE_RELAX
        for cell in to_freeze:
            frozen_value[cell] = min(cap_at_theta[cell], caps[cell])
        active = [k for k in active if not np.isfinite(frozen_value[k])]
        if theta <= _THETA_TOL:
            for cell in active:
                frozen_value[cell] = min(cap_at_theta[cell], caps[cell])
            active = []

    if active:  # max_rounds exhausted: freeze the rest at the last theta
        last = thetas[-1] if thetas else 1.0
        for cell in active:
            frozen_value[cell] = min(
                last * caps[cell] * (1.0 + _FREEZE_RELAX) + _FREEZE_RELAX,
                caps[cell],
            )

    sol = _balancing_solve(
        problem,
        frozen_value,
        caps,
        backend=backend,
        front_load=front_load,
        solve_budget_s=solve_budget_s,
    )
    if sol.status is not LPStatus.OPTIMAL:
        if sol.status is LPStatus.INFEASIBLE:
            return LexminResult(status="infeasible")
        raise SolverFailure(  # pragma: no cover - solve_lp raises first
            f"lexmin final solve failed: {sol.message}",
            backend=backend,
            reason="error",
            elapsed=0.0,
        )

    x = sol.x
    utilisation = np.asarray(problem.a_util @ x).ravel() / caps
    return LexminResult(
        status="optimal",
        x=x,
        minimax=thetas[0] if thetas else float(utilisation.max(initial=0.0)),
        thetas=tuple(thetas),
        rounds=rounds,
        utilisation=utilisation,
    )
