"""A from-scratch dense two-phase simplex solver.

The paper used CPLEX; this module exists so the reproduction's correctness
does not hinge on any external solver, and so that the "simplex walks from
vertex to vertex, hence integral solutions on totally unimodular systems"
argument of Sec. V-B is directly observable: :func:`solve` always returns a
*basic* (vertex) solution.

It is a textbook tableau implementation with Bland's anti-cycling rule —
intended for the small/medium problems in the tests and ablation benchmarks,
not for the large production LPs (use the HiGHS backend for those).

Standard-form reduction:

* finite lower bounds are shifted out (``x = x' + lb``);
* ``-inf`` lower bounds are handled by splitting ``x = x+ - x-``;
* finite upper bounds become explicit ``<=`` rows;
* ``<=`` rows get slack variables, all rows get artificials as needed.

Duals are recovered as ``y = c_B @ B^-1`` and reported in scipy's marginal
convention (``dual_i = d objective / d b_i``).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.obs import current_obs

_TOL = 1e-9
_MAX_ITERS_FACTOR = 200


class _Tableau:
    """Mutable simplex tableau with Bland's rule pivoting."""

    def __init__(self, table: np.ndarray, basis: list[int]):
        # table has shape (m+1, n+1): m constraint rows plus the objective
        # row at the bottom; last column is the rhs.
        self.table = table
        self.basis = basis
        self.m = table.shape[0] - 1
        self.n = table.shape[1] - 1
        self.pivots = 0  # across all run() phases, for observability

    def _price_out_basis(self, cost: np.ndarray) -> None:
        """Set the objective row for the given cost vector and current basis."""
        obj = self.table[-1]
        obj[:] = 0.0
        obj[: self.n] = cost
        for row, var in enumerate(self.basis):
            coeff = obj[var]
            if abs(coeff) > _TOL:
                obj -= coeff * self.table[row]

    def run(self, cost: np.ndarray, allowed: np.ndarray) -> str:
        """Minimise ``cost @ x`` over columns where ``allowed`` is True.

        Returns "optimal" or "unbounded".
        """
        self._price_out_basis(cost)
        max_iters = _MAX_ITERS_FACTOR * max(self.m + self.n, 10)
        for _ in range(max_iters):
            obj = self.table[-1, : self.n]
            candidates = np.flatnonzero(allowed & (obj < -_TOL))
            if candidates.size == 0:
                return "optimal"
            entering = int(candidates[0])  # Bland: smallest index
            column = self.table[: self.m, entering]
            rhs = self.table[: self.m, -1]
            positive = column > _TOL
            if not positive.any():
                return "unbounded"
            ratios = np.full(self.m, np.inf)
            ratios[positive] = rhs[positive] / column[positive]
            best = ratios.min()
            # Bland tie-break: among minimal ratios pick smallest basis var.
            tied = np.flatnonzero(np.abs(ratios - best) <= _TOL * (1 + abs(best)))
            leaving_row = int(min(tied, key=lambda r: self.basis[r]))
            self._pivot(leaving_row, entering)
        raise RuntimeError("simplex exceeded the iteration limit (cycling?)")

    def _pivot(self, row: int, col: int) -> None:
        table = self.table
        pivot = table[row, col]
        table[row] /= pivot
        for r in range(table.shape[0]):
            if r != row and abs(table[r, col]) > _TOL:
                table[r] -= table[r, col] * table[row]
        self.basis[row] = col
        self.pivots += 1


def solve(problem: LinearProgram) -> LPSolution:
    """Two-phase simplex solve of *problem*; returns a vertex solution."""
    n = problem.n_variables
    lb = problem.lb.copy()
    ub = problem.ub.copy()
    if np.any(np.isinf(lb) & (lb > 0)) or np.any(np.isinf(ub) & (ub < 0)):
        raise ValueError("bounds contain +inf lower or -inf upper bounds")

    # Variable mapping: column j of the reduced problem is either
    # ("shift", i, lb_i) for x_i = x'_j + lb_i, or the pair
    # ("pos", i) / ("neg", i) of a free-variable split x_i = x+ - x-.
    col_kind: list[tuple[str, int]] = []
    shift = np.zeros(n)
    columns_of: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        if np.isfinite(lb[i]):
            shift[i] = lb[i]
            columns_of[i].append(len(col_kind))
            col_kind.append(("pos", i))
        else:
            columns_of[i].append(len(col_kind))
            col_kind.append(("pos", i))
            columns_of[i].append(len(col_kind))
            col_kind.append(("neg", i))
    n_red = len(col_kind)

    def expand_matrix(matrix: sparse.csr_matrix) -> np.ndarray:
        dense = np.asarray(matrix.todense(), dtype=float)
        out = np.zeros((dense.shape[0], n_red))
        for j, (kind, i) in enumerate(col_kind):
            out[:, j] = dense[:, i] if kind == "pos" else -dense[:, i]
        return out

    a_ub = expand_matrix(problem.a_ub)
    b_ub = problem.b_ub - np.asarray(problem.a_ub @ shift).ravel()
    a_eq = expand_matrix(problem.a_eq)
    b_eq = problem.b_eq - np.asarray(problem.a_eq @ shift).ravel()

    # Finite upper bounds become <= rows on the shifted variables.
    bound_rows = []
    bound_rhs = []
    for i in range(n):
        if np.isfinite(ub[i]):
            row = np.zeros(n_red)
            for j in columns_of[i]:
                row[j] = 1.0 if col_kind[j][0] == "pos" else -1.0
            bound_rows.append(row)
            bound_rhs.append(ub[i] - shift[i])
    if bound_rows:
        a_ub = np.vstack([a_ub, np.array(bound_rows)])
        b_ub = np.concatenate([b_ub, np.array(bound_rhs)])

    n_le = a_ub.shape[0]
    n_eq = a_eq.shape[0]
    m = n_le + n_eq

    cost = np.zeros(n_red)
    for j, (kind, i) in enumerate(col_kind):
        cost[j] = problem.c[i] if kind == "pos" else -problem.c[i]
    const_term = float(problem.c @ shift)

    # Equalities with slacks for <= rows; make every rhs non-negative.
    a_full = np.zeros((m, n_red + n_le))
    rhs = np.zeros(m)
    a_full[:n_le, :n_red] = a_ub
    a_full[:n_le, n_red : n_red + n_le] = np.eye(n_le)
    rhs[:n_le] = b_ub
    if n_eq:
        a_full[n_le:, :n_red] = a_eq
        rhs[n_le:] = b_eq
    negative = rhs < 0
    a_full[negative] *= -1.0
    rhs[negative] *= -1.0

    # Artificials for every row (simple and robust; phase 1 drives them out).
    n_struct = n_red + n_le
    total = n_struct + m
    table = np.zeros((m + 1, total + 1))
    table[:m, :n_struct] = a_full
    table[:m, n_struct : n_struct + m] = np.eye(m)
    table[:m, -1] = rhs
    basis = [n_struct + r for r in range(m)]
    tableau = _Tableau(table, basis)

    # Phase 1: minimise the sum of artificials.
    phase1_cost = np.zeros(total)
    phase1_cost[n_struct:] = 1.0
    allowed = np.ones(total, dtype=bool)
    status = tableau.run(phase1_cost, allowed)
    if status == "unbounded":  # cannot happen for phase 1, defensive
        return LPSolution(status=LPStatus.ERROR, message="phase-1 unbounded")
    # The tableau's bottom-right cell is the *negated* objective value.
    if -tableau.table[-1, -1] > 1e-7:
        return LPSolution(status=LPStatus.INFEASIBLE, message="phase-1 optimum > 0")

    # Drive any artificial still in the basis out (degenerate rows).
    for row in range(m):
        if tableau.basis[row] >= n_struct:
            pivots = np.flatnonzero(
                np.abs(tableau.table[row, :n_struct]) > 1e-7
            )
            if pivots.size:
                tableau._pivot(row, int(pivots[0]))
            # else: redundant row, the artificial stays at value 0.

    # Phase 2: artificials are forbidden.
    phase2_cost = np.zeros(total)
    phase2_cost[:n_red] = cost
    allowed = np.ones(total, dtype=bool)
    allowed[n_struct:] = False
    status = tableau.run(phase2_cost, allowed)
    if status == "unbounded":
        return LPSolution(status=LPStatus.UNBOUNDED, message="phase-2 unbounded")

    # Recover the primal solution.
    x_red = np.zeros(total)
    for row, var in enumerate(tableau.basis):
        x_red[var] = tableau.table[row, -1]
    x = shift.copy()
    for j, (kind, i) in enumerate(col_kind):
        x[i] += x_red[j] if kind == "pos" else -x_red[j]

    # Duals: y = c_B @ B^-1 over the original (sign-restored) row system.
    a_rows = np.zeros((m, total))
    a_rows[:, :n_struct] = a_full
    a_rows[:, n_struct:] = np.eye(m)
    basis_cols = a_rows[:, tableau.basis]
    cost_b = phase2_cost[tableau.basis]
    try:
        y = np.linalg.solve(basis_cols.T, cost_b)
    except np.linalg.LinAlgError:
        y = np.full(m, np.nan)
    # Undo the row sign flips so duals refer to the user's rhs.
    y = np.where(negative, -y, y)
    duals_ub = y[: problem.a_ub.shape[0]] if problem.a_ub.shape[0] else None
    duals_eq = y[n_le : n_le + n_eq] if n_eq else None

    current_obs().histogram("lp.backend.simplex.pivots").observe(tableau.pivots)
    objective = float(phase2_cost @ x_red) + const_term
    return LPSolution(
        status=LPStatus.OPTIMAL,
        x=x,
        objective=objective,
        duals_ub=duals_ub,
        duals_eq=duals_eq,
        message="simplex optimal",
    )
