"""LP presolve: cheap reductions before handing a problem to a backend.

Production solvers (the CPLEX the paper used, the HiGHS we substitute) run
dozens of presolve rules; this module implements the three that matter for
our scheduling LPs and is careful to be *exactly* reversible:

1. **fixed variables** (``lb == ub``) are substituted out;
2. **empty rows** (all-zero coefficients) are checked for consistency and
   dropped;
3. **singleton inequality rows** (one non-zero) become bound tightenings.

``presolve`` returns the reduced program plus a :class:`Restorer` that maps
a reduced solution back to the original variable space.  The scheduling
LPs benefit mostly from rule 1 (per-slot parallelism caps fix many
variables at re-plan time when jobs are nearly done) — and the module
doubles as substrate documentation for how such reductions stay sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.lp.solver import solve_lp
from repro.lp.unimodular import detect_interval_structure
from repro.obs import current_obs

__all__ = ["PresolveError", "Restorer", "presolve", "solve_with_presolve"]

_TOL = 1e-9


class PresolveError(ValueError):
    """Raised when presolve proves the problem infeasible."""


@dataclass(frozen=True)
class Restorer:
    """Maps a reduced-space solution back to the original variables."""

    n_original: int
    kept_columns: np.ndarray
    fixed_values: np.ndarray  # full-length; NaN where the variable was kept
    constant_objective: float

    def restore(self, x_reduced: np.ndarray) -> np.ndarray:
        x = self.fixed_values.copy()
        x[self.kept_columns] = x_reduced
        return x

    def restore_solution(self, solution: LPSolution) -> LPSolution:
        if solution.status is not LPStatus.OPTIMAL or solution.x is None:
            return solution
        return LPSolution(
            status=solution.status,
            x=self.restore(solution.x),
            objective=(
                None
                if solution.objective is None
                else solution.objective + self.constant_objective
            ),
            message=solution.message,
        )


def presolve(problem: LinearProgram) -> tuple[LinearProgram, Restorer]:
    """Apply the reductions; raises :class:`PresolveError` on proven
    infeasibility (crossed bounds, unsatisfiable empty rows)."""
    n = problem.n_variables
    lb = problem.lb.copy()
    ub = problem.ub.copy()
    a_ub = problem.a_ub.tocsc(copy=True)
    b_ub = problem.b_ub.copy()
    a_eq = problem.a_eq.tocsc(copy=True)
    b_eq = problem.b_eq.copy()

    # Rule 3 first: singleton <= rows tighten bounds (then may fix vars).
    keep_rows = np.ones(a_ub.shape[0], dtype=bool)
    a_ub_csr = a_ub.tocsr()
    for row in range(a_ub.shape[0]):
        start, end = a_ub_csr.indptr[row], a_ub_csr.indptr[row + 1]
        if end - start != 1:
            continue
        col = int(a_ub_csr.indices[start])
        coeff = float(a_ub_csr.data[start])
        if abs(coeff) < _TOL:
            continue
        bound = b_ub[row] / coeff
        if coeff > 0:
            ub[col] = min(ub[col], bound)
        else:
            lb[col] = max(lb[col], bound)
        keep_rows[row] = False
    if np.any(lb > ub + _TOL):
        raise PresolveError("singleton rows prove crossed bounds")
    ub = np.maximum(ub, lb)  # absorb harmless numerical crossings
    a_ub_csr = a_ub_csr[keep_rows]
    b_ub = b_ub[keep_rows]

    # Rule 1: fixed variables.
    fixed_mask = np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= _TOL)
    fixed_values = np.full(n, np.nan)
    fixed_values[fixed_mask] = lb[fixed_mask]
    kept = np.flatnonzero(~fixed_mask)
    if kept.size == 0:
        raise PresolveError(
            "presolve fixed every variable; solve trivially instead"
        )
    fixed_contrib = np.where(fixed_mask, lb, 0.0)
    b_ub = b_ub - np.asarray(a_ub_csr @ fixed_contrib).ravel()
    b_eq2 = b_eq - np.asarray(a_eq.tocsr() @ fixed_contrib).ravel()
    constant_obj = float(problem.c @ fixed_contrib)

    a_ub_red = a_ub_csr[:, kept]
    a_eq_red = a_eq.tocsr()[:, kept]

    # Rule 2: empty rows (possibly created by fixing variables).
    def drop_empty(matrix, rhs, is_eq):
        matrix = matrix.tocsr()
        counts = np.diff(matrix.indptr)
        nonempty = counts > 0
        empty_rhs = rhs[~nonempty]
        if is_eq:
            if np.any(np.abs(empty_rhs) > 1e-7):
                raise PresolveError("empty equality row with non-zero rhs")
        else:
            if np.any(empty_rhs < -1e-7):
                raise PresolveError("empty <= row with negative rhs")
        return matrix[nonempty], rhs[nonempty]

    a_ub_red, b_ub = drop_empty(a_ub_red, b_ub, is_eq=False)
    a_eq_red, b_eq2 = drop_empty(a_eq_red, b_eq2, is_eq=True)

    reduced = LinearProgram(
        c=problem.c[kept],
        a_ub=a_ub_red,
        b_ub=b_ub,
        a_eq=a_eq_red,
        b_eq=b_eq2,
        lb=lb[kept],
        ub=ub[kept],
    )
    restorer = Restorer(
        n_original=n,
        kept_columns=kept,
        fixed_values=fixed_values,
        constant_objective=constant_obj,
    )
    return reduced, restorer


def solve_with_presolve(
    problem: LinearProgram, backend: str = "highs"
) -> LPSolution:
    """Presolve, solve, and restore; falls back to a direct solve when the
    presolve degenerates (e.g. every variable fixed).

    Interval-structured instances (see
    :func:`repro.lp.unimodular.detect_interval_structure`) skip the
    reductions entirely: bound tightening and variable substitution destroy
    the all-ones/uniform-weight shape that lets the ``fastsolve`` backend
    replace the LP with a max-flow, and those instances solve faster than
    any presolve could save (``lp.presolve.skipped_structured`` counter).
    """
    structure = detect_interval_structure(problem)
    if structure.structured:
        current_obs().counter("lp.presolve.skipped_structured").inc()
        return solve_lp(problem, backend=backend)
    try:
        with current_obs().span("lp.presolve"):
            reduced, restorer = presolve(problem)
    except PresolveError as error:
        if "fixed every variable" in str(error):
            return solve_lp(problem, backend=backend)
        return LPSolution(status=LPStatus.INFEASIBLE, message=str(error))
    solution = solve_lp(reduced, backend=backend)
    return restorer.restore_solution(solution)
