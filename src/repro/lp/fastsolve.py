"""Structure-exploiting combinatorial solver for theta-form interval LPs.

Lemma 2 of the paper says the round subproblem of the lexicographic minimax
solve is totally unimodular with interval structure — a class that does not
need a general-purpose LP solver.  This backend makes that observation
executable:

1. :func:`repro.lp.unimodular.detect_interval_structure` certifies the
   instance and lowers it to a transportation network: jobs supply
   ``A_j`` flow units through per-variable arcs into capacity *cells*
   whose sink capacity is a concave piecewise-linear function of theta,
   ``f_i(theta) = min_r (b_r + g_r * theta)`` with slopes ``g_r >= 0``.
2. The LP ``min theta`` is then a *parametric* maximum-flow problem:
   theta is feasible iff ``maxflow(theta) == sum_j A_j``, and the optimum
   is the smallest such theta.  We find it by discrete Newton from below:
   solve a max-flow (scipy's C Dinic implementation on integer-scaled
   capacities), and while infeasible, read the min cut off the residual
   graph and jump to the smallest theta at which that cut's *exact*
   (unscaled, float) capacity reaches the demand.  Each jump strictly
   increases theta and the number of distinct cuts is finite, so the loop
   terminates at the exact optimum — every theta we ever return is the
   root of a cut equation computed in full float precision, never a
   scaled/rounded value.
3. A theta is *accepted* only with a certificate: either the integer
   max-flow saturates outright (floor-rounded capacities under-approximate,
   so saturation proves exact feasibility), or — when the shortfall at an
   exact cut root is within the integer rounding of that cut — a second
   max-flow just above theta saturates, pinning the optimum to the probed
   window with theta as its exact lower endpoint.  A deficient probe
   surfaces the *next* binding cut (hidden inside the rounding window at
   theta) and the Newton loop continues; without either certificate the
   solve bails out rather than returning a theta below the true optimum,
   which would poison the lexmin ladder's frozen caps.
4. A cut with zero slope and insufficient constant capacity proves the LP
   INFEASIBLE (the relaxation ladder probes for exactly this answer).
5. The allocation is recovered from the certifying (saturated) flow and
   mapped back through ``x_v = z_v / w_v``.  Supplies are exact (source
   arcs are integral and saturated); floor-rounded cell caps mean the
   allocation never exceeds the true capacities at its flow's theta.

Scaling uses integer capacities bounded by int32 (scipy's requirement); any
internal inconsistency — scale overflow, a non-converging Newton loop, a
rounding-marginal instance without a certificate — *bails out* to the HiGHS
backend (``lp.fastsolve.bailout`` counter) rather than guessing, so this
module can be aggressive about structure while :func:`solve` stays total.

Duals are not produced (``duals_ub=None``); the lexmin ladder already falls
back to utilisation-threshold freezing in that case, exactly as it does for
the dense simplex backend.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import breadth_first_order, maximum_flow

from repro.lp import scipy_backend
from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.lp.unimodular import IntervalStructure, detect_interval_structure
from repro.obs import current_obs

__all__ = ["solve", "supports"]

_MAX_NEWTON = 100
_MAX_INNER = 50
#: Largest usable integer capacity (scipy's max-flow wants int32).
_CAP_LIMIT = 2**31 - 2
#: Preferred flow-unit resolution; shrunk so the *total* demand still fits
#: int32 (capacities larger than the total are clipped — never binding).
_SCALE = 10**9
#: Relative tolerance deciding that a cut's exact capacity already meets
#: the demand (i.e. an integer-rounding artifact, not real infeasibility).
_FEAS_TOL = 1e-9


class _DetectionCache(threading.local):
    """Per-thread memo so ``supports`` + ``solve`` detect only once.

    Holding a strong reference to the problem keeps its ``id`` stable for
    the lifetime of the cache entry.
    """

    def __init__(self) -> None:
        self.problem: LinearProgram | None = None
        self.structure: IntervalStructure | None = None


_cache = _DetectionCache()


def _structure_of(problem: LinearProgram) -> IntervalStructure:
    if _cache.problem is problem and _cache.structure is not None:
        return _cache.structure
    structure = detect_interval_structure(problem)
    _cache.problem = problem
    _cache.structure = structure
    return structure


def supports(problem: LinearProgram) -> bool:
    """Capability probe for the backend registry: is this LP structured?"""
    return _structure_of(problem).structured


def solve(problem: LinearProgram) -> LPSolution:
    """Solve *problem*, combinatorially when structured, via HiGHS otherwise.

    The registry normally routes unstructured instances away from this
    backend (``supports`` returns False), but ``solve`` stays total so the
    backend is safe to call directly.
    """
    obs = current_obs()
    structure = _structure_of(problem)
    if not structure.structured:
        obs.counter("lp.fastsolve.miss").inc()
        return scipy_backend.solve(problem)
    solution = _solve_structured(problem, structure)
    if solution is None:
        obs.counter("lp.fastsolve.bailout").inc()
        return scipy_backend.solve(problem)
    obs.counter("lp.fastsolve.hit").inc()
    return solution


# -- the parametric max-flow engine ----------------------------------------------


def _solve_structured(
    problem: LinearProgram, s: IntervalStructure
) -> LPSolution | None:
    """The Newton loop; None means "bail out to HiGHS"."""
    n_jobs, n_cells = s.n_jobs, s.n_cells
    demand = s.job_demand
    total = float(demand.sum())

    # Capacity lines sorted by cell for segmented (reduceat) evaluation.
    order = np.argsort(s.row_cell, kind="stable")
    line_cell = s.row_cell[order]
    line_const = s.row_const[order]
    line_slope = s.row_slope[order]
    seg_starts = np.flatnonzero(
        np.concatenate([[True], np.diff(line_cell) != 0])
    )
    if seg_starts.size != n_cells:  # pragma: no cover - detection guarantees
        return None

    # A zero-slope line that is negative at any theta kills its whole cell,
    # and every cell has at least one variable with a demand equality
    # behind it only when that job can route elsewhere — but the row itself
    # (sum of non-negative terms <= negative) is already unsatisfiable.
    if np.any((line_slope == 0.0) & (line_const < 0.0)):
        return _infeasible(problem, "a capacity row is negative at every theta")

    # Smallest theta with all cell capacities >= 0 (a valid lower bound:
    # each row must admit the non-negative load running through it).
    theta = 0.0
    negative = line_const < 0.0
    if np.any(negative):
        theta = float(np.max(-line_const[negative] / line_slope[negative]))

    def cell_caps(at: float) -> np.ndarray:
        return np.minimum.reduceat(line_const + line_slope * at, seg_starts)

    def cut_line(in_cut: np.ndarray, at: float) -> tuple[float, float]:
        """Exact (constant, slope) of the cut's capacity as a line in theta.

        ``in_cut`` flags the source side.  Cells on the source side
        contribute their active (arg-min at *at*) capacity line; jobs on
        the sink side contribute their supply; source->sink crossing arcs
        contribute their capacity.
        """
        job_in = in_cut[1 : 1 + n_jobs]
        cell_in = in_cut[1 + n_jobs : 1 + n_jobs + n_cells]
        const = float(demand[~job_in].sum())
        slope = 0.0
        crossing = job_in[arc_job] & ~cell_in[arc_cell]
        caps_cross = arc_cap[crossing]
        if np.any(np.isinf(caps_cross)):
            return np.inf, 0.0
        const += float(caps_cross.sum())
        values = line_const + line_slope * at
        mins = np.minimum.reduceat(values, seg_starts)
        is_min = values <= mins[line_cell] + 1e-12 * np.maximum(
            1.0, np.abs(mins[line_cell])
        )
        candidates = np.flatnonzero(is_min)
        first = np.concatenate([[True], np.diff(line_cell[candidates]) != 0])
        pick = candidates[first]  # one arg-min line per cell, in cell order
        const += float(line_const[pick][cell_in].sum())
        slope += float(line_slope[pick][cell_in].sum())
        return const, slope

    # Arcs job -> cell, parallel arcs merged (their flows are
    # interchangeable; the merged flow is split back per variable below).
    arc_key = s.var_job.astype(np.int64) * n_cells + s.var_cell
    uniq_keys, arc_of_var = np.unique(arc_key, return_inverse=True)
    arc_of_var = arc_of_var.ravel()
    arc_job = (uniq_keys // n_cells).astype(np.int64)
    arc_cell = (uniq_keys % n_cells).astype(np.int64)
    arc_cap = np.zeros(uniq_keys.size)
    np.add.at(arc_cap, arc_of_var, s.var_cap)

    if total <= 0.0:
        return _build_solution(problem, s, np.zeros(s.alloc_cols.size), theta)

    sink = 1 + n_jobs + n_cells

    def flow_at(at: float):
        """(graph, scale, flow result) at *at*, or None when unscalable."""
        graph, scale = _build_graph(
            demand, arc_job, arc_cell, arc_cap, cell_caps(at),
            n_jobs, n_cells, total,
        )
        if graph is None:
            return None
        return graph, scale, maximum_flow(graph, 0, sink)

    saturated = None  # the certifying (graph, scale, result) triple
    for _ in range(_MAX_NEWTON):
        attempt = flow_at(theta)
        if attempt is None:
            return None
        graph, scale, result = attempt
        target = int(round(total * scale))
        if result.flow_value >= target:
            saturated = attempt
            break  # floored caps under-approximate: theta is exact-feasible
        in_cut = _source_side(graph, result.flow)
        const, slope = cut_line(in_cut, theta)
        if const + slope * theta >= total - _FEAS_TOL * max(1.0, total):
            # This cut's *exact* capacity already meets the demand: its
            # shortfall is integer rounding.  But another cut with root in
            # (theta, theta + rounding window] may hide behind the same
            # rounding, so theta cannot be accepted on this evidence alone
            # (a theta below the optimum poisons the lexmin frozen caps).
            # Probe just far enough above theta that this cut's floored
            # capacity clears the demand: a saturated probe certifies the
            # optimum lies in [theta, probe] with theta its exact cut-root
            # lower endpoint; a deficient probe surfaces the hidden cut
            # and the Newton loop continues from its exact root.
            if slope <= 0.0 or not np.isfinite(const):
                return None  # flat/uncut-table rounding artifact: undecidable
            deficit = target - int(result.flow_value)
            probe = theta + (deficit + n_cells + 4) / (scale * slope)
            attempt = flow_at(probe)
            if attempt is None:
                return None
            pgraph, pscale, presult = attempt
            if presult.flow_value >= int(round(total * pscale)):
                saturated = attempt
                break
            in_cut = _source_side(pgraph, presult.flow)
            const, slope = cut_line(in_cut, probe)
        if slope <= 0.0:
            if const >= total - _FEAS_TOL * max(1.0, total):
                return None  # flat cut satisfied exactly: pure rounding
            return _infeasible(
                problem, "min cut capacity is independent of theta"
            )
        theta_next = (total - const) / slope
        # The arg-min lines of a cell can switch as theta grows (f_i is a
        # min of lines); re-evaluate at the candidate until it is feasible
        # *for this cut* — finitely many line combinations, each strictly
        # increasing theta_next.
        for _ in range(_MAX_INNER):
            const, slope = cut_line(in_cut, theta_next)
            if const + slope * theta_next >= total - _FEAS_TOL * max(1.0, total):
                break
            if slope <= 0.0:
                return _infeasible(
                    problem, "min cut capacity is independent of theta"
                )
            theta_next = (total - const) / slope
        else:  # pragma: no cover - defensive
            return None
        if theta_next <= theta * (1.0 + 1e-15) + 1e-300:
            # No exact forward progress and no saturation certificate:
            # never guess a theta that might undercut the optimum.
            return None
        theta = theta_next
    if saturated is None:
        return None

    # Extract the allocation from the certifying flow itself: its floored
    # cell caps under-approximate the true capacities at its theta, so the
    # allocation is exactly feasible and (saturation) demand-complete.
    graph, scale, result = saturated
    flow = result.flow
    arc_flow = np.asarray(
        flow[1 + arc_job, 1 + n_jobs + arc_cell]
    ).ravel().astype(float) / scale
    x_alloc = _split_arc_flow(arc_flow, arc_of_var, s.var_cap)
    x_alloc = x_alloc / s.var_weight
    return _build_solution(problem, s, x_alloc, theta)


def _build_graph(
    demand: np.ndarray,
    arc_job: np.ndarray,
    arc_cell: np.ndarray,
    arc_cap: np.ndarray,
    cells: np.ndarray,
    n_jobs: int,
    n_cells: int,
    total: float,
):
    """Integer-scaled flow network, or (None, 0) when it cannot be scaled.

    Node layout: 0 = source, 1..n_jobs = jobs, then cells, then sink.
    The scale is sized so the *total* demand fits int32 — capacities above
    the total are clipped to the limit, which never binds because no flow
    can exceed the total supply.  Supplies and arc capacities are integral
    in flow units so their scaled values are exact; cell capacities are
    floor-rounded (conservative: a saturated flow certifies exact
    feasibility of its theta).
    """
    cells = np.maximum(cells, 0.0)
    scale = min(_SCALE, int(_CAP_LIMIT // (int(total) + 1)))
    if scale < 1:
        return None, 0
    demand_s = np.round(demand * scale).astype(np.int64)
    # An infinite arc can never carry more than its job's whole supply.
    arc_s = np.where(
        np.isfinite(arc_cap),
        np.round(np.minimum(arc_cap, total + 1.0) * scale),
        demand_s[arc_job],
    ).astype(np.int64)
    cell_s = np.floor(cells * scale + 1e-9).astype(np.int64)
    cell_s = np.clip(cell_s, 0, _CAP_LIMIT)
    arc_s = np.clip(arc_s, 0, _CAP_LIMIT)
    n_nodes = 2 + n_jobs + n_cells
    rows = np.concatenate(
        [np.zeros(n_jobs, dtype=np.int64), 1 + arc_job, 1 + n_jobs + np.arange(n_cells)]
    )
    cols = np.concatenate(
        [
            1 + np.arange(n_jobs),
            1 + n_jobs + arc_cell,
            np.full(n_cells, n_nodes - 1, dtype=np.int64),
        ]
    )
    data = np.concatenate([demand_s, arc_s, cell_s])
    if data.max(initial=0) > _CAP_LIMIT:  # pragma: no cover - scale bounds it
        return None, 0
    graph = csr_matrix(
        (data.astype(np.int32), (rows, cols)), shape=(n_nodes, n_nodes)
    )
    return graph, scale


def _source_side(graph: csr_matrix, flow: csr_matrix) -> np.ndarray:
    """Min-cut source side: nodes reachable from 0 in the residual graph."""
    residual = (graph - flow).tocsr()
    residual.eliminate_zeros()
    reachable = breadth_first_order(
        residual, 0, directed=True, return_predecessors=False
    )
    in_cut = np.zeros(graph.shape[0], dtype=bool)
    in_cut[reachable] = True
    return in_cut


def _split_arc_flow(
    arc_flow: np.ndarray, arc_of_var: np.ndarray, var_cap: np.ndarray
) -> np.ndarray:
    """Distribute merged-arc flow back to the parallel per-variable arcs.

    Parallel arcs only arise when two variables of one job share a cell
    (never in the LPs our builders emit); flows on them are interchangeable
    so a greedy split respecting each variable's own capacity is optimal.
    """
    n_vars = arc_of_var.size
    if np.unique(arc_of_var).size == n_vars:
        return arc_flow[arc_of_var]
    z = np.zeros(n_vars)
    remaining = arc_flow.copy()
    for var in range(n_vars):
        arc = arc_of_var[var]
        z[var] = min(remaining[arc], var_cap[var])
        remaining[arc] -= z[var]
    return z


def _build_solution(
    problem: LinearProgram,
    s: IntervalStructure,
    x_alloc: np.ndarray,
    theta: float,
) -> LPSolution:
    x = np.zeros(problem.n_variables)
    x[s.alloc_cols] = x_alloc
    x[s.theta_col] = theta
    return LPSolution(
        status=LPStatus.OPTIMAL,
        x=x,
        objective=float(s.theta_cost * theta),
        duals_ub=None,
        duals_eq=None,
        message="fastsolve: parametric max-flow on detected interval structure",
    )


def _infeasible(problem: LinearProgram, detail: str) -> LPSolution:
    return LPSolution(
        status=LPStatus.INFEASIBLE,
        message=f"fastsolve: {detail}",
    )
