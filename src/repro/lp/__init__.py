"""Linear-programming substrate.

The paper solves its scheduling LP with CPLEX (Sec. VII).  We provide
interchangeable backends behind one registry (:mod:`repro.lp.solver`):

* :mod:`repro.lp.scipy_backend` — scipy's HiGHS (the default; fast, sparse);
* :mod:`repro.lp.simplex` — a from-scratch dense two-phase simplex, so the
  reproduction does not depend on any external solver for correctness (it is
  also what makes the "LP vertex solutions are integral on TU matrices"
  argument directly observable in tests);
* :mod:`repro.lp.fastsolve` — the structure-exploiting parametric max-flow
  solver: lexmin round subproblems certified by
  :func:`repro.lp.unimodular.detect_interval_structure` are lowered to a
  transportation network and solved combinatorially (Lemma 2 made
  executable); everything else is declined to HiGHS.

:mod:`repro.lp.unimodular` checks Lemma 2's total-unimodularity claim on
generated instances and hosts the public structure-detection API.
"""

from repro.lp.presolve import presolve, solve_with_presolve
from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.lp.solver import (
    DEFAULT_BACKEND,
    FunctionBackend,
    SolverBackend,
    SolverFailure,
    available_backends,
    backend_info,
    get_backend,
    install_fault_injector,
    register_backend,
    solve_lp,
    unregister_backend,
)
from repro.lp.unimodular import (
    IntervalStructure,
    detect_interval_structure,
    has_consecutive_ones_columns,
    is_totally_unimodular,
)

__all__ = [
    "DEFAULT_BACKEND",
    "FunctionBackend",
    "IntervalStructure",
    "LPSolution",
    "LPStatus",
    "LinearProgram",
    "SolverBackend",
    "SolverFailure",
    "available_backends",
    "backend_info",
    "detect_interval_structure",
    "get_backend",
    "has_consecutive_ones_columns",
    "install_fault_injector",
    "is_totally_unimodular",
    "presolve",
    "register_backend",
    "solve_lp",
    "solve_with_presolve",
    "unregister_backend",
]
