"""Linear-programming substrate.

The paper solves its scheduling LP with CPLEX (Sec. VII).  We provide two
interchangeable backends behind one interface:

* :mod:`repro.lp.scipy_backend` — scipy's HiGHS (the default; fast, sparse);
* :mod:`repro.lp.simplex` — a from-scratch dense two-phase simplex, so the
  reproduction does not depend on any external solver for correctness (it is
  also what makes the "LP vertex solutions are integral on TU matrices"
  argument directly observable in tests).

:mod:`repro.lp.unimodular` checks Lemma 2's total-unimodularity claim on
generated instances.
"""

from repro.lp.presolve import presolve, solve_with_presolve
from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.lp.solver import (
    SolverFailure,
    available_backends,
    install_fault_injector,
    solve_lp,
)
from repro.lp.unimodular import (
    is_interval_matrix,
    is_totally_unimodular,
)

__all__ = [
    "LPSolution",
    "LPStatus",
    "LinearProgram",
    "SolverFailure",
    "available_backends",
    "install_fault_injector",
    "is_interval_matrix",
    "is_totally_unimodular",
    "presolve",
    "solve_lp",
    "solve_with_presolve",
]
