"""A solver-agnostic linear program container.

Minimise ``c @ x`` subject to ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and
elementwise bounds ``lb <= x <= ub``.  Matrices may be dense numpy arrays or
scipy sparse matrices; backends normalise as needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import sparse


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


def _as_2d(matrix, n_cols: int):
    """Normalise an optional constraint matrix; None becomes a 0-row matrix."""
    if matrix is None:
        return sparse.csr_matrix((0, n_cols))
    if sparse.issparse(matrix):
        return matrix.tocsr()
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"constraint matrix must be 2-D, got shape {arr.shape}")
    if arr.shape[1] != n_cols:
        raise ValueError(
            f"constraint matrix has {arr.shape[1]} columns, objective has {n_cols}"
        )
    return sparse.csr_matrix(arr)


@dataclass
class LinearProgram:
    """min c @ x  s.t.  A_ub x <= b_ub,  A_eq x == b_eq,  lb <= x <= ub."""

    c: np.ndarray
    a_ub: sparse.csr_matrix = None  # type: ignore[assignment]
    b_ub: np.ndarray = None  # type: ignore[assignment]
    a_eq: sparse.csr_matrix = None  # type: ignore[assignment]
    b_eq: np.ndarray = None  # type: ignore[assignment]
    lb: np.ndarray = None  # type: ignore[assignment]
    ub: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        n = self.c.size
        if n == 0:
            raise ValueError("a linear program needs at least one variable")
        self.a_ub = _as_2d(self.a_ub, n)
        self.a_eq = _as_2d(self.a_eq, n)
        self.b_ub = (
            np.zeros(0) if self.b_ub is None else np.asarray(self.b_ub, dtype=float).ravel()
        )
        self.b_eq = (
            np.zeros(0) if self.b_eq is None else np.asarray(self.b_eq, dtype=float).ravel()
        )
        if self.a_ub.shape[0] != self.b_ub.size:
            raise ValueError(
                f"A_ub has {self.a_ub.shape[0]} rows but b_ub has {self.b_ub.size}"
            )
        if self.a_eq.shape[0] != self.b_eq.size:
            raise ValueError(
                f"A_eq has {self.a_eq.shape[0]} rows but b_eq has {self.b_eq.size}"
            )
        self.lb = np.zeros(n) if self.lb is None else np.asarray(self.lb, dtype=float).ravel()
        self.ub = (
            np.full(n, np.inf) if self.ub is None else np.asarray(self.ub, dtype=float).ravel()
        )
        if self.lb.size != n or self.ub.size != n:
            raise ValueError("bounds must have one entry per variable")
        if np.any(self.lb > self.ub):
            bad = int(np.argmax(self.lb > self.ub))
            raise ValueError(
                f"variable {bad} has lb={self.lb[bad]} > ub={self.ub[bad]}"
            )

    @property
    def n_variables(self) -> int:
        return self.c.size

    @property
    def n_constraints(self) -> int:
        return self.a_ub.shape[0] + self.a_eq.shape[0]


@dataclass(frozen=True)
class LPSolution:
    """Result of solving a :class:`LinearProgram`.

    ``duals_ub``/``duals_eq`` follow scipy's sign convention (marginals of
    the optimal objective with respect to the right-hand sides; <= 0 for
    binding ``<=`` rows of a minimisation).  They may be ``None`` for
    backends that do not produce duals.
    """

    status: LPStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    duals_ub: Optional[np.ndarray] = field(default=None, repr=False)
    duals_eq: Optional[np.ndarray] = field(default=None, repr=False)
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    def require_optimal(self) -> np.ndarray:
        """Return x, raising a descriptive error if the solve failed."""
        if not self.is_optimal or self.x is None:
            raise RuntimeError(
                f"LP solve failed: status={self.status.value} message={self.message!r}"
            )
        return self.x
