"""LP backend built on scipy's HiGHS interface (the default backend)."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.obs import current_obs

_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,  # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def solve(problem: LinearProgram) -> LPSolution:
    """Solve with HiGHS dual simplex (vertex solutions, duals available)."""
    res = linprog(
        c=problem.c,
        A_ub=problem.a_ub if problem.a_ub.shape[0] else None,
        b_ub=problem.b_ub if problem.b_ub.size else None,
        A_eq=problem.a_eq if problem.a_eq.shape[0] else None,
        b_eq=problem.b_eq if problem.b_eq.size else None,
        bounds=np.column_stack([problem.lb, problem.ub]),
        method="highs",
    )
    status = _STATUS_MAP.get(res.status, LPStatus.ERROR)
    if getattr(res, "nit", None) is not None:
        current_obs().histogram("lp.backend.highs.iterations").observe(int(res.nit))
    if status is not LPStatus.OPTIMAL:
        return LPSolution(status=status, message=str(res.message))
    duals_ub = None
    duals_eq = None
    if getattr(res, "ineqlin", None) is not None and problem.a_ub.shape[0]:
        duals_ub = np.asarray(res.ineqlin.marginals, dtype=float)
    if getattr(res, "eqlin", None) is not None and problem.a_eq.shape[0]:
        duals_eq = np.asarray(res.eqlin.marginals, dtype=float)
    return LPSolution(
        status=LPStatus.OPTIMAL,
        x=np.asarray(res.x, dtype=float),
        objective=float(res.fun),
        duals_ub=duals_ub,
        duals_eq=duals_eq,
        message=str(res.message),
    )
