"""Total unimodularity checks (Lemma 2 of the paper).

A matrix is *totally unimodular* (TU) when every square submatrix has
determinant in {-1, 0, 1}.  If the constraint matrix of an LP with integral
right-hand sides is TU, the feasible region is an integral polyhedron and
simplex-type solvers return integral vertex optima — that is the paper's
whole argument for solving its ILP as an LP.

Two checks are provided:

* :func:`is_totally_unimodular` — exact brute force over all square
  submatrices (exponential; only usable for small matrices in tests).
* :func:`is_interval_matrix` — the sufficient condition that actually applies
  to the paper's constraints (2)-(4): each *column* of the x-variable block
  has its ones consecutive within each job's (t, r) run.  Interval matrices
  are TU.
"""

from __future__ import annotations

import itertools

import numpy as np


def _entries_ok(matrix: np.ndarray) -> bool:
    return bool(np.isin(matrix, (-1.0, 0.0, 1.0)).all())


def is_totally_unimodular(matrix, max_order: int | None = None) -> bool:
    """Exact TU check by enumerating square submatrix determinants.

    ``max_order`` truncates the enumeration (checking submatrices only up to
    that size); leave ``None`` for the full exact check.  Complexity is
    exponential — intended for matrices with at most ~12 rows/columns.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if not _entries_ok(arr):
        return False
    rows, cols = arr.shape
    top = min(rows, cols)
    if max_order is not None:
        top = min(top, max_order)
    for order in range(2, top + 1):
        for row_idx in itertools.combinations(range(rows), order):
            sub_rows = arr[list(row_idx), :]
            for col_idx in itertools.combinations(range(cols), order):
                det = np.linalg.det(sub_rows[:, list(col_idx)])
                if abs(det - round(det)) > 1e-6 or round(det) not in (-1, 0, 1):
                    return False
    return True


def is_interval_matrix(matrix) -> bool:
    """True when every column's non-zeros are a consecutive run of ones.

    Matrices with the consecutive-ones property on columns (row-interval
    matrices) are totally unimodular.  The paper's demand constraint (2)
    sums each x_it^r over the contiguous window t in [a_i, d_i], and the
    capacity constraints touch each variable once, giving this structure.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if not bool(np.isin(arr, (0.0, 1.0)).all()):
        return False
    for col in arr.T:
        nz = np.flatnonzero(col)
        if nz.size and not np.array_equal(nz, np.arange(nz[0], nz[-1] + 1)):
            return False
    return True


def max_fractionality(x: np.ndarray) -> float:
    """Distance of the most fractional entry of *x* from the integers.

    Used by the integrality experiments: 0.0 means a fully integral vector.
    """
    arr = np.asarray(x, dtype=float)
    if arr.size == 0:
        return 0.0
    frac = np.abs(arr - np.round(arr))
    return float(frac.max())
