"""Structure detection for the scheduling LPs (Lemma 2 of the paper).

A matrix is *totally unimodular* (TU) when every square submatrix has
determinant in {-1, 0, 1}.  If the constraint matrix of an LP with integral
right-hand sides is TU, the feasible region is an integral polyhedron and
simplex-type solvers return integral vertex optima — that is the paper's
whole argument for solving its ILP as an LP.

Three checks are provided:

* :func:`is_totally_unimodular` — exact brute force over all square
  submatrices (exponential; only usable for small matrices in tests).
* :func:`has_consecutive_ones_columns` — the sufficient condition that
  actually applies to the paper's constraints (2)-(4): each *column* of the
  x-variable block has its ones consecutive within each job's (t, r) run.
  Interval matrices are TU.  (The pre-1.8 ``is_interval_matrix`` alias was
  removed.)
* :func:`detect_interval_structure` — the production entry point: given a
  whole :class:`~repro.lp.problem.LinearProgram`, decide whether it is a
  *theta-form interval transportation LP* (the shape of every lexmin round
  subproblem) and, when it is, return the lowered network description that
  :mod:`repro.lp.fastsolve` solves combinatorially and
  :mod:`repro.lp.presolve` uses to skip structure-destroying reductions.

The detected class, precisely: minimise a single non-negative variable
``theta`` subject to

* all-ones demand equalities ``sum_{v in job j} x_v = D_j`` where every
  allocation variable belongs to exactly one job and each job's variables
  occupy a contiguous index run (the consecutive-ones window of Lemma 2);
* capacity rows that partition the allocation variables into *cells*: all
  rows over the same support (variable set) form one cell, each variable
  has one uniform coefficient ``w_v`` across its rows, uniform within its
  job, and theta appears only with non-positive coefficients (so a cell's
  effective capacity is ``min_r (b_r + g_r * theta)`` with slopes
  ``g_r >= 0``);
* bounds ``0 <= x_v <= u_v`` and ``theta >= 0`` free above.

Substituting ``z_v = w_v x_v`` turns the system into a pure transportation
problem — jobs supply ``A_j = W_j D_j`` units through arcs of capacity
``w_v u_v`` into cells whose sink capacity grows linearly with theta —
which is exactly the min-cost-flow form Lemma 2 promises.  Detection never
guesses: every condition is verified exactly, so a ``structured=True``
result is a proof that the flow lowering is equivalent to the LP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (problem is light)
    from repro.lp.problem import LinearProgram

__all__ = [
    "IntervalStructure",
    "detect_interval_structure",
    "has_consecutive_ones_columns",
    "is_totally_unimodular",
    "max_fractionality",
]

#: Tolerance for the exact-structure checks (coefficients that must match).
_UNIFORM_TOL = 1e-9
#: Tolerance for "this float is an integer" (flow-unit demands and caps).
_INT_TOL = 1e-6


def _entries_ok(matrix: np.ndarray) -> bool:
    return bool(np.isin(matrix, (-1.0, 0.0, 1.0)).all())


def is_totally_unimodular(matrix, max_order: int | None = None) -> bool:
    """Exact TU check by enumerating square submatrix determinants.

    ``max_order`` truncates the enumeration (checking submatrices only up to
    that size); leave ``None`` for the full exact check.  Complexity is
    exponential — intended for matrices with at most ~12 rows/columns.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if not _entries_ok(arr):
        return False
    rows, cols = arr.shape
    top = min(rows, cols)
    if max_order is not None:
        top = min(top, max_order)
    for order in range(2, top + 1):
        for row_idx in itertools.combinations(range(rows), order):
            sub_rows = arr[list(row_idx), :]
            for col_idx in itertools.combinations(range(cols), order):
                det = np.linalg.det(sub_rows[:, list(col_idx)])
                if abs(det - round(det)) > 1e-6 or round(det) not in (-1, 0, 1):
                    return False
    return True


def has_consecutive_ones_columns(matrix) -> bool:
    """True when every column's non-zeros are a consecutive run of ones.

    Matrices with the consecutive-ones property on columns (row-interval
    matrices) are totally unimodular.  The paper's demand constraint (2)
    sums each x_it^r over the contiguous window t in [a_i, d_i], and the
    capacity constraints touch each variable once, giving this structure.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if not bool(np.isin(arr, (0.0, 1.0)).all()):
        return False
    for col in arr.T:
        nz = np.flatnonzero(col)
        if nz.size and not np.array_equal(nz, np.arange(nz[0], nz[-1] + 1)):
            return False
    return True


def max_fractionality(x: np.ndarray) -> float:
    """Distance of the most fractional entry of *x* from the integers.

    Used by the integrality experiments: 0.0 means a fully integral vector.
    """
    arr = np.asarray(x, dtype=float)
    if arr.size == 0:
        return 0.0
    frac = np.abs(arr - np.round(arr))
    return float(frac.max())


# -- whole-program structure detection -------------------------------------------


@dataclass(frozen=True)
class IntervalStructure:
    """Result of :func:`detect_interval_structure`.

    ``structured`` is the verdict; ``reason`` explains a ``False`` (useful
    for the ``lp.fastsolve.miss`` breakdown in tests).  When ``True``, the
    remaining fields describe the lowered transportation network in
    *flow units* (the ``z = w * x`` substitution already applied):

    Attributes:
        theta_col: column index of the minimax variable.
        theta_cost: its (positive) objective coefficient.
        n_jobs: number of demand equalities (flow sources).
        n_cells: number of capacity-row support groups (flow sinks).
        interval_windows: every job's variables occupy a contiguous index
            run (the consecutive-ones certificate of Lemma 2).
        alloc_cols: original column index of each allocation variable.
        var_job / var_cell: the job (eq row) and cell each variable feeds.
        var_weight: the uniform capacity coefficient ``w_v`` of each
            variable (divide flow by this to recover ``x_v``).
        var_cap: per-variable arc capacity ``w_v * ub_v`` (may be inf),
            integral when finite.
        job_demand: per-job supply ``A_j = W_j * D_j`` (integral).
        row_cell / row_const / row_slope: the capacity lines — cell ``i``'s
            capacity at a given theta is ``min`` over its rows of
            ``row_const + row_slope * theta`` with ``row_slope >= 0``.
    """

    structured: bool
    reason: str = ""
    theta_col: int = -1
    theta_cost: float = 0.0
    n_jobs: int = 0
    n_cells: int = 0
    interval_windows: bool = False
    alloc_cols: Optional[np.ndarray] = None
    var_job: Optional[np.ndarray] = None
    var_cell: Optional[np.ndarray] = None
    var_weight: Optional[np.ndarray] = None
    var_cap: Optional[np.ndarray] = None
    job_demand: Optional[np.ndarray] = None
    row_cell: Optional[np.ndarray] = None
    row_const: Optional[np.ndarray] = None
    row_slope: Optional[np.ndarray] = None

    def __bool__(self) -> bool:
        return self.structured


def _fail(reason: str) -> IntervalStructure:
    return IntervalStructure(structured=False, reason=reason)


def detect_interval_structure(problem: "LinearProgram") -> IntervalStructure:
    """Decide whether *problem* is a theta-form interval transportation LP.

    Cost is O(nnz log nnz) in numpy — negligible next to any solve — and
    every structural condition is checked exactly (see the module
    docstring), so a positive verdict certifies that the flow lowering in
    :mod:`repro.lp.fastsolve` is equivalent to the LP.  Any violation
    returns ``structured=False`` with a human-readable ``reason``.
    """
    c = problem.c
    n = c.size
    nz = np.flatnonzero(c)
    if nz.size != 1 or c[nz[0]] <= 0:
        return _fail("objective is not a single positive theta coefficient")
    theta = int(nz[0])
    if np.any(problem.lb != 0.0):
        return _fail("non-zero lower bounds")
    if np.isfinite(problem.ub[theta]):
        return _fail("theta has a finite upper bound")
    if np.any(problem.ub < 0.0):
        return _fail("negative upper bound")

    # -- demand equalities: all-ones rows partitioning the allocation vars --
    a_eq = problem.a_eq
    m_eq = a_eq.shape[0]
    if m_eq == 0 or a_eq.nnz == 0:
        return _fail("no demand equalities")
    if np.any(a_eq.data != 1.0):
        return _fail("demand rows are not all-ones")
    eq_row_counts = np.diff(a_eq.indptr)
    if np.any(eq_row_counts == 0):
        return _fail("empty demand row")
    eq_col_counts = np.bincount(a_eq.indices, minlength=n)
    if eq_col_counts[theta] != 0:
        return _fail("theta appears in a demand row")
    alloc_mask = np.ones(n, dtype=bool)
    alloc_mask[theta] = False
    if np.any(eq_col_counts[alloc_mask] != 1):
        return _fail("a variable is missing from, or shared across, demand rows")
    if np.any(problem.b_eq < 0.0):
        return _fail("negative demand")
    # Consecutive-ones windows: each row's columns are a contiguous run.
    starts = a_eq.indptr[:-1]
    row_min = np.minimum.reduceat(a_eq.indices, starts)
    row_max = np.maximum.reduceat(a_eq.indices, starts)
    if np.any(row_max - row_min + 1 != eq_row_counts):
        return _fail("demand windows are not contiguous variable runs")
    var_job_full = np.empty(n, dtype=np.int64)
    var_job_full[a_eq.indices] = np.repeat(np.arange(m_eq), eq_row_counts)

    # -- capacity rows: grouped by support into cells -----------------------
    a_ub = problem.a_ub
    m_ub = a_ub.shape[0]
    if m_ub == 0 or a_ub.nnz == 0:
        return _fail("no capacity rows")
    ub_row_of = np.repeat(np.arange(m_ub), np.diff(a_ub.indptr))
    cols = a_ub.indices
    data = a_ub.data
    theta_entries = cols == theta
    slope_full = np.zeros(m_ub)
    if np.any(theta_entries):
        tdat = data[theta_entries]
        if np.any(tdat > 0.0):
            return _fail("positive theta coefficient in a capacity row")
        slope_full[ub_row_of[theta_entries]] = -tdat
    a_rows = ub_row_of[~theta_entries]
    a_cols = cols[~theta_entries]
    a_data = data[~theta_entries]
    if a_cols.size == 0:
        return _fail("capacity rows have no allocation variables")
    if np.any(a_data <= 0.0):
        return _fail("non-positive allocation coefficient in a capacity row")
    alloc_per_row = np.bincount(a_rows, minlength=m_ub)
    vacuous = alloc_per_row == 0
    if np.any(vacuous & (slope_full > 0.0)):
        return _fail("capacity row bounds theta alone")
    if np.any(vacuous & (problem.b_ub < 0.0)):
        return _fail("vacuous capacity row with negative rhs")

    # Per-variable uniform weight across all its capacity rows.
    wmin = np.full(n, np.inf)
    wmax = np.full(n, -np.inf)
    np.minimum.at(wmin, a_cols, a_data)
    np.maximum.at(wmax, a_cols, a_data)
    if np.any(~np.isfinite(wmax[alloc_mask])):
        return _fail("a variable appears in no capacity row")
    if np.any(wmax[alloc_mask] - wmin[alloc_mask] > _UNIFORM_TOL):
        return _fail("a variable has non-uniform capacity coefficients")

    # Group rows by support.  A commutative hash buckets candidate groups;
    # the run-length check below then verifies support equality *exactly*,
    # so a hash collision degrades to a safe "unstructured" verdict, never
    # to a wrong lowering.
    mix = a_cols.astype(np.uint64)
    h1 = (mix * np.uint64(0x9E3779B97F4A7C15)) ^ (mix >> np.uint64(17))
    h2 = (mix * np.uint64(0xC2B2AE3D27D4EB4F)) ^ (mix << np.uint64(13))
    hash1 = np.zeros(m_ub, dtype=np.uint64)
    hash2 = np.zeros(m_ub, dtype=np.uint64)
    np.add.at(hash1, a_rows, h1)
    np.add.at(hash2, a_rows, h2)
    kept_rows = np.flatnonzero(~vacuous)
    key = np.stack(
        [
            alloc_per_row[kept_rows],
            hash1[kept_rows].view(np.int64),
            hash2[kept_rows].view(np.int64),
        ],
        axis=1,
    )
    _, cell_of_kept = np.unique(key, axis=0, return_inverse=True)
    cell_of_kept = cell_of_kept.ravel()
    n_cells = int(cell_of_kept.max()) + 1
    cell_of_row = np.full(m_ub, -1, dtype=np.int64)
    cell_of_row[kept_rows] = cell_of_kept

    cell_of_entry = cell_of_row[a_rows]
    # Exact support-equality check: sorting entries by (cell, col), every
    # (cell, col) run must touch each of the cell's rows exactly once.
    order = np.lexsort((a_cols, cell_of_entry))
    gc = cell_of_entry[order]
    cc = a_cols[order]
    run_break = np.empty(gc.size, dtype=bool)
    run_break[0] = True
    np.logical_or(np.diff(gc) != 0, np.diff(cc) != 0, out=run_break[1:])
    run_id = np.cumsum(run_break) - 1
    run_len = np.bincount(run_id)
    rows_per_cell = np.bincount(cell_of_kept, minlength=n_cells)
    run_cell = gc[run_break]
    if np.any(run_len != rows_per_cell[run_cell]):
        return _fail("capacity rows with overlapping but unequal supports")

    # Each variable must live in exactly one cell.
    cmin = np.full(n, np.iinfo(np.int64).max)
    cmax = np.full(n, -1, dtype=np.int64)
    np.minimum.at(cmin, a_cols, cell_of_entry)
    np.maximum.at(cmax, a_cols, cell_of_entry)
    if np.any(cmin[alloc_mask] != cmax[alloc_mask]):
        return _fail("a variable spans multiple capacity cells")

    alloc_cols = np.flatnonzero(alloc_mask)
    var_job = var_job_full[alloc_cols]
    var_cell = cmax[alloc_cols]
    var_weight = wmax[alloc_cols]

    # Per-job uniform weight (needed for the z = w * x substitution).
    job_wmin = np.full(m_eq, np.inf)
    job_wmax = np.zeros(m_eq)
    np.minimum.at(job_wmin, var_job, var_weight)
    np.maximum.at(job_wmax, var_job, var_weight)
    if np.any(job_wmax - job_wmin > _UNIFORM_TOL):
        return _fail("a job mixes variables of different capacity weights")

    # Integral supplies and arc capacities in flow units.
    job_demand = job_wmax * problem.b_eq
    if np.any(np.abs(job_demand - np.round(job_demand)) > _INT_TOL):
        return _fail("non-integral job demand in flow units")
    job_demand = np.round(job_demand)
    var_cap = var_weight * problem.ub[alloc_cols]
    finite = np.isfinite(var_cap)
    if np.any(np.abs(var_cap[finite] - np.round(var_cap[finite])) > _INT_TOL):
        return _fail("non-integral variable bound in flow units")
    var_cap = np.where(finite, np.round(var_cap), np.inf)

    return IntervalStructure(
        structured=True,
        reason="",
        theta_col=theta,
        theta_cost=float(c[theta]),
        n_jobs=m_eq,
        n_cells=n_cells,
        interval_windows=True,
        alloc_cols=alloc_cols,
        var_job=var_job,
        var_cell=var_cell,
        var_weight=var_weight,
        var_cap=var_cap,
        job_demand=job_demand,
        row_cell=cell_of_kept,
        row_const=problem.b_ub[kept_rows].astype(float),
        row_slope=slope_full[kept_rows],
    )
