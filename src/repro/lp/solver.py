"""Pluggable backend registry: one entry point for solving LPs, with guardrails.

Backends are :class:`SolverBackend` objects — a name, metadata, a
``supports(problem)`` capability probe and a ``solve(problem)`` method —
held in a process-wide registry (mirroring
:mod:`repro.schedulers.registry`).  Three ship by default:

* ``highs`` — scipy's HiGHS (sparse, exact, produces duals; the default);
* ``simplex`` — the from-scratch dense two-phase simplex;
* ``fastsolve`` — the structure-exploiting parametric max-flow solver of
  :mod:`repro.lp.fastsolve`; it *claims* theta-form interval LPs via
  ``supports`` and declines everything else.

Every solve passes through :func:`solve_lp`, which makes it the natural
observability *and* fault-tolerance choke point:

* each call is timed into the ``lp.solve`` histogram (plus a per-backend
  ``lp.solve.backend.<name>`` histogram), tagged counters record
  per-backend call volume, and non-optimal outcomes (infeasible ladder
  rungs during planning are *expected*, but their rate matters) are
  counted separately;
* **capability routing**: when the requested backend does not support the
  instance (``lp.solve.declined.<name>`` counter) the call is transparently
  routed to its alternate, so callers can request ``fastsolve``
  unconditionally;
* a backend that raises, or returns an ERROR status, is retried
  **once on the alternate backend** (``lp.solve.retry`` counter) — a typed
  :class:`SolverFailure` is raised only when every attempt failed, so
  callers never silently consume a broken solution;
* an optional **per-call wall-time budget** bounds planning latency: a
  solve that exceeds it raises :class:`SolverFailure` (``reason="budget"``,
  ``lp.solve.budget_exceeded`` counter) instead of letting a pathological
  instance stall the scheduling loop — callers degrade gracefully (see
  :class:`repro.schedulers.flowtime_sched.FlowTimeScheduler`).

An injectable fault hook (:func:`install_fault_injector`) lets the chaos
harness (:mod:`repro.chaos`) inject solver exceptions and slow solves
deterministically; production code never installs one.

Registration takes :class:`SolverBackend` objects only; wrap a plain
``Callable[[LinearProgram], LPSolution]`` in a :class:`FunctionBackend`
(the legacy bare-callable form was removed in 1.8.0).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.lp import fastsolve, scipy_backend, simplex
from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.obs import current_obs

__all__ = [
    "DEFAULT_BACKEND",
    "FunctionBackend",
    "SolverBackend",
    "SolverFailure",
    "available_backends",
    "backend_info",
    "get_backend",
    "install_fault_injector",
    "register_backend",
    "solve_lp",
    "unregister_backend",
]

DEFAULT_BACKEND = "highs"


@runtime_checkable
class SolverBackend(Protocol):
    """What the registry requires of an LP backend.

    ``supports`` is a cheap capability probe — it must not mutate the
    problem and should be far cheaper than a solve (structure detection is
    the intended cost ceiling).  ``solve`` must return a valid
    :class:`~repro.lp.problem.LPSolution` or raise; INFEASIBLE/UNBOUNDED
    are answers, ERROR/exceptions are solver faults the registry retries.
    """

    name: str
    description: str

    def supports(self, problem: LinearProgram) -> bool:
        """Can this backend solve *problem*?"""
        ...  # pragma: no cover - protocol

    def solve(self, problem: LinearProgram) -> LPSolution:
        """Solve *problem* (may assume ``supports`` returned True)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FunctionBackend:
    """Adapter presenting a plain solve function as a :class:`SolverBackend`.

    Without ``supports_fn`` the backend claims every instance (the contract
    the old bare-callable registry implied).
    """

    name: str
    solve_fn: Callable[[LinearProgram], LPSolution]
    description: str = ""
    supports_fn: Optional[Callable[[LinearProgram], bool]] = None

    def supports(self, problem: LinearProgram) -> bool:
        if self.supports_fn is None:
            return True
        return bool(self.supports_fn(problem))

    def solve(self, problem: LinearProgram) -> LPSolution:
        return self.solve_fn(problem)


_registry_lock = threading.Lock()
_BACKENDS: dict[str, SolverBackend] = {}
#: Retry order: the one alternate backend tried when the named one fails
#: (or declines the instance).
_ALTERNATE: dict[str, str] = {}


def register_backend(
    backend: SolverBackend,
    *,
    alternate: str | None = None,
    overwrite: bool = False,
) -> SolverBackend:
    """Register a backend under its name; returns the registered object.

    *backend* must satisfy :class:`SolverBackend`; wrap a plain solve
    function in a :class:`FunctionBackend`.  (The pre-1.8 bare-callable
    form ``register_backend(name, fn)`` was removed.)

    ``alternate`` names the backend retried when this one fails or
    declines (defaults to :data:`DEFAULT_BACKEND`).  Re-registering an
    existing name raises ``ValueError`` unless ``overwrite`` is set.
    """
    if isinstance(backend, str):
        raise TypeError(
            "register_backend(name, fn) was removed in 1.8.0; pass a "
            "SolverBackend object (FunctionBackend wraps a plain solve "
            "function)"
        )
    name = backend.name
    with _registry_lock:
        if name in _BACKENDS and not overwrite:
            raise ValueError(f"LP backend {name!r} is already registered")
        _BACKENDS[name] = backend
        if alternate is not None:
            _ALTERNATE[name] = alternate
        elif name not in _ALTERNATE and name != DEFAULT_BACKEND:
            _ALTERNATE[name] = DEFAULT_BACKEND
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend; unknown names raise ``KeyError``."""
    with _registry_lock:
        del _BACKENDS[name]
        _ALTERNATE.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (feeds ``--lp-backend`` choices)."""
    with _registry_lock:
        return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> SolverBackend:
    """The registered backend object; unknown names raise ``ValueError``."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {name!r}; available: {available_backends()}"
        ) from None


def backend_info() -> dict[str, str]:
    """Name -> description of every registered backend (docs/CLI help)."""
    with _registry_lock:
        return {name: _BACKENDS[name].description for name in sorted(_BACKENDS)}


class SolverFailure(RuntimeError):
    """The LP could not be solved (every backend attempt failed).

    Distinct from an *infeasible* or *unbounded* LP — those are valid
    answers (properties of the problem; relaxation ladders probe for
    infeasibility) and are returned as a normal
    :class:`~repro.lp.problem.LPSolution`.  ``SolverFailure`` means the
    solver itself misbehaved: a backend exception, an ERROR status, or a
    blown wall-time budget.  Callers that can make progress without a fresh solution
    (the FlowTime scheduler's degraded mode) catch this type.

    Attributes:
        backend: the backend of the *last* failed attempt.
        reason: ``"error"`` (backend exception or bad status) or
            ``"budget"`` (wall-time budget exceeded).
        elapsed: wall-clock seconds spent across attempts.
    """

    def __init__(self, message: str, *, backend: str, reason: str, elapsed: float):
        super().__init__(message)
        self.backend = backend
        self.reason = reason
        self.elapsed = elapsed


# -- fault injection (chaos harness support) ------------------------------------

#: Called as ``injector(backend, problem)`` immediately before each backend
#: attempt; it may raise (an injected solver fault) or sleep (a slow solve).
_fault_injector: Optional[Callable[[str, LinearProgram], None]] = None
_injector_lock = threading.Lock()


def install_fault_injector(
    injector: Optional[Callable[[str, LinearProgram], None]],
) -> None:
    """Install (or with ``None``, remove) the process-wide solver fault hook.

    Test/chaos-harness support: the injector runs before every backend
    attempt and may raise or sleep.  Use :func:`repro.chaos.chaos_solver`
    for the managed context-manager form.
    """
    global _fault_injector
    with _injector_lock:
        _fault_injector = injector


def _supports(backend: SolverBackend, problem: LinearProgram) -> bool:
    """Capability probe that never propagates a backend bug."""
    try:
        return bool(backend.supports(problem))
    except Exception:  # a broken probe must not take down the solve path
        return False


def _attempt(
    backend: str, problem: LinearProgram
) -> tuple[LPSolution | None, Exception | None]:
    """One backend attempt: (solution, None) or (None, error)."""
    injector = _fault_injector
    try:
        if injector is not None:
            injector(backend, problem)
        return _BACKENDS[backend].solve(problem), None
    except Exception as error:  # backend blew up: a solver fault, not an answer
        return None, error


def _route(
    backend: str, problem: LinearProgram, retry_alternate: bool
) -> list[str]:
    """Attempt order: capability-routed primary, then its alternate."""
    obs = current_obs()
    primary = backend
    if not _supports(_BACKENDS[backend], problem):
        obs.counter(f"lp.solve.declined.{backend}").inc()
        alt = _ALTERNATE.get(backend, DEFAULT_BACKEND)
        if alt in _BACKENDS and _supports(_BACKENDS[alt], problem):
            primary = alt
        else:
            primary = DEFAULT_BACKEND
    attempts = [primary]
    if retry_alternate:
        alt = _ALTERNATE.get(primary)
        if alt is not None and alt in _BACKENDS and alt != primary:
            attempts.append(alt)
    return attempts


def solve_lp(
    problem: LinearProgram,
    backend: str = DEFAULT_BACKEND,
    *,
    tag: str | None = None,
    time_budget_s: float | None = None,
    retry_alternate: bool = True,
) -> LPSolution:
    """Solve *problem* with the named backend from the registry.

    ``tag`` attributes the call to a caller-chosen purpose (e.g.
    ``"admission"``) via an extra ``lp.solve.tag.<tag>`` counter, so call
    volume can be broken down by origin, not just by backend.

    Guardrails (see module docstring): a backend that declines the
    instance (``supports`` False) is routed around; a failed attempt
    (backend exception or ERROR status) is retried once on the alternate
    backend when ``retry_alternate`` is set; ``time_budget_s`` bounds the
    *total* wall time across attempts.  Exhausting either raises
    :class:`SolverFailure`.  INFEASIBLE and UNBOUNDED outcomes are valid
    answers and are returned normally (``lp.solve.nonoptimal`` counter).
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown LP backend {backend!r}; available: {available_backends()}"
        )
    obs = current_obs()
    attempts = _route(backend, problem, retry_alternate)

    start = time.perf_counter()
    last_error: Exception | None = None
    last_status = ""
    last_backend = backend
    for n, attempt_backend in enumerate(attempts):
        last_backend = attempt_backend
        if n > 0:
            obs.counter("lp.solve.retry").inc()
        attempt_start = time.perf_counter()
        with obs.span("lp.solve"):
            solution, error = _attempt(attempt_backend, problem)
        now = time.perf_counter()
        elapsed = now - start
        obs.histogram(f"lp.solve.backend.{attempt_backend}").observe(
            now - attempt_start
        )
        obs.counter(f"lp.solve.calls.{attempt_backend}").inc()
        if tag is not None:
            obs.counter(f"lp.solve.tag.{tag}").inc()
        if error is not None:
            obs.counter(f"lp.solve.errors.{attempt_backend}").inc()
            last_error = error
            continue
        if time_budget_s is not None and elapsed > time_budget_s:
            # The budget bounds planning latency: even a usable answer that
            # arrives too late is a failure from the scheduling loop's point
            # of view (and retrying would stall it further).
            obs.counter("lp.solve.budget_exceeded").inc()
            raise SolverFailure(
                f"LP solve blew its {time_budget_s:.3f}s budget "
                f"({elapsed:.3f}s on {attempt_backend!r})",
                backend=attempt_backend,
                reason="budget",
                elapsed=elapsed,
            )
        if solution.status in (
            LPStatus.OPTIMAL,
            LPStatus.INFEASIBLE,
            LPStatus.UNBOUNDED,
        ):
            # INFEASIBLE and UNBOUNDED are *answers* (properties of the
            # problem a correct alternate backend would only confirm), not
            # solver faults — return them, don't retry.
            if not solution.is_optimal:
                obs.counter("lp.solve.nonoptimal").inc()
            return solution
        # ERROR: the solver misbehaved — never hand that to a caller as if
        # it were an answer.
        obs.counter(f"lp.solve.errors.{attempt_backend}").inc()
        last_status = solution.status.value
        last_error = None

    elapsed = time.perf_counter() - start
    obs.counter("lp.solve.failures").inc()
    detail = (
        f"{type(last_error).__name__}: {last_error}"
        if last_error is not None
        else f"status {last_status!r}"
    )
    raise SolverFailure(
        f"LP solve failed on all of {attempts} ({detail})",
        backend=last_backend,
        reason="error",
        elapsed=elapsed,
    )


# -- built-in backends -----------------------------------------------------------

register_backend(
    FunctionBackend(
        name="highs",
        solve_fn=scipy_backend.solve,
        description="scipy HiGHS: sparse exact LP with duals (default)",
    ),
    alternate="simplex",
)
register_backend(
    FunctionBackend(
        name="simplex",
        solve_fn=simplex.solve,
        description="from-scratch dense two-phase simplex (no external solver)",
    ),
    alternate="highs",
)
register_backend(
    FunctionBackend(
        name="fastsolve",
        solve_fn=fastsolve.solve,
        description=(
            "parametric max-flow for interval-structured minimax LPs "
            "(Lemma 2); declines unstructured instances"
        ),
        supports_fn=fastsolve.supports,
    ),
    alternate="highs",
)
