"""Backend registry: one entry point for solving LPs."""

from __future__ import annotations

from typing import Callable

from repro.lp import scipy_backend, simplex
from repro.lp.problem import LinearProgram, LPSolution

_BACKENDS: dict[str, Callable[[LinearProgram], LPSolution]] = {
    "highs": scipy_backend.solve,
    "simplex": simplex.solve,
}

DEFAULT_BACKEND = "highs"


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def solve_lp(problem: LinearProgram, backend: str = DEFAULT_BACKEND) -> LPSolution:
    """Solve *problem* with the named backend ("highs" or "simplex")."""
    try:
        solver = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {backend!r}; available: {available_backends()}"
        ) from None
    return solver(problem)
