"""Backend registry: one entry point for solving LPs.

Every solve passes through :func:`solve_lp`, which makes it the natural
observability choke point: each call is timed into the ``lp.solve``
histogram of the current registry, tagged counters record per-backend call
volume, and non-optimal outcomes (infeasible ladder rungs during planning
are *expected*, but their rate matters) are counted separately.
"""

from __future__ import annotations

from typing import Callable

from repro.lp import scipy_backend, simplex
from repro.lp.problem import LinearProgram, LPSolution
from repro.obs import current_obs

_BACKENDS: dict[str, Callable[[LinearProgram], LPSolution]] = {
    "highs": scipy_backend.solve,
    "simplex": simplex.solve,
}

DEFAULT_BACKEND = "highs"


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def solve_lp(
    problem: LinearProgram,
    backend: str = DEFAULT_BACKEND,
    *,
    tag: str | None = None,
) -> LPSolution:
    """Solve *problem* with the named backend ("highs" or "simplex").

    ``tag`` attributes the call to a caller-chosen purpose (e.g.
    ``"admission"``) via an extra ``lp.solve.tag.<tag>`` counter, so call
    volume can be broken down by origin, not just by backend.
    """
    try:
        solver = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {backend!r}; available: {available_backends()}"
        ) from None
    obs = current_obs()
    with obs.span("lp.solve"):
        solution = solver(problem)
    obs.counter(f"lp.solve.calls.{backend}").inc()
    if tag is not None:
        obs.counter(f"lp.solve.tag.{tag}").inc()
    if not solution.is_optimal:
        obs.counter("lp.solve.nonoptimal").inc()
    return solution
