"""Backend registry: one entry point for solving LPs, with guardrails.

Every solve passes through :func:`solve_lp`, which makes it the natural
observability *and* fault-tolerance choke point:

* each call is timed into the ``lp.solve`` histogram of the current
  registry, tagged counters record per-backend call volume, and
  non-optimal outcomes (infeasible ladder rungs during planning are
  *expected*, but their rate matters) are counted separately;
* a backend that raises, or returns an ERROR status, is retried
  **once on the alternate backend** (``lp.solve.retry`` counter) — a typed
  :class:`SolverFailure` is raised only when every attempt failed, so
  callers never silently consume a broken solution;
* an optional **per-call wall-time budget** bounds planning latency: a
  solve that exceeds it raises :class:`SolverFailure` (``reason="budget"``,
  ``lp.solve.budget_exceeded`` counter) instead of letting a pathological
  instance stall the scheduling loop — callers degrade gracefully (see
  :class:`repro.schedulers.flowtime_sched.FlowTimeScheduler`).

An injectable fault hook (:func:`install_fault_injector`) lets the chaos
harness (:mod:`repro.chaos`) inject solver exceptions and slow solves
deterministically; production code never installs one.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.lp import scipy_backend, simplex
from repro.lp.problem import LinearProgram, LPSolution, LPStatus
from repro.obs import current_obs

__all__ = [
    "DEFAULT_BACKEND",
    "SolverFailure",
    "available_backends",
    "install_fault_injector",
    "solve_lp",
]

_BACKENDS: dict[str, Callable[[LinearProgram], LPSolution]] = {
    "highs": scipy_backend.solve,
    "simplex": simplex.solve,
}

DEFAULT_BACKEND = "highs"

#: Retry order: the one alternate backend tried when the named one fails.
_ALTERNATE = {"highs": "simplex", "simplex": "highs"}


class SolverFailure(RuntimeError):
    """The LP could not be solved (every backend attempt failed).

    Distinct from an *infeasible* or *unbounded* LP — those are valid
    answers (properties of the problem; relaxation ladders probe for
    infeasibility) and are returned as a normal
    :class:`~repro.lp.problem.LPSolution`.  ``SolverFailure`` means the
    solver itself misbehaved: a backend exception, an ERROR status, or a
    blown wall-time budget.  Callers that can make progress without a fresh solution
    (the FlowTime scheduler's degraded mode) catch this type.

    Attributes:
        backend: the backend of the *last* failed attempt.
        reason: ``"error"`` (backend exception or bad status) or
            ``"budget"`` (wall-time budget exceeded).
        elapsed: wall-clock seconds spent across attempts.
    """

    def __init__(self, message: str, *, backend: str, reason: str, elapsed: float):
        super().__init__(message)
        self.backend = backend
        self.reason = reason
        self.elapsed = elapsed


# -- fault injection (chaos harness support) ------------------------------------

#: Called as ``injector(backend, problem)`` immediately before each backend
#: attempt; it may raise (an injected solver fault) or sleep (a slow solve).
_fault_injector: Optional[Callable[[str, LinearProgram], None]] = None
_injector_lock = threading.Lock()


def install_fault_injector(
    injector: Optional[Callable[[str, LinearProgram], None]],
) -> None:
    """Install (or with ``None``, remove) the process-wide solver fault hook.

    Test/chaos-harness support: the injector runs before every backend
    attempt and may raise or sleep.  Use :func:`repro.chaos.chaos_solver`
    for the managed context-manager form.
    """
    global _fault_injector
    with _injector_lock:
        _fault_injector = injector


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def _attempt(
    backend: str, problem: LinearProgram
) -> tuple[LPSolution | None, Exception | None]:
    """One backend attempt: (solution, None) or (None, error)."""
    injector = _fault_injector
    try:
        if injector is not None:
            injector(backend, problem)
        return _BACKENDS[backend](problem), None
    except Exception as error:  # backend blew up: a solver fault, not an answer
        return None, error


def solve_lp(
    problem: LinearProgram,
    backend: str = DEFAULT_BACKEND,
    *,
    tag: str | None = None,
    time_budget_s: float | None = None,
    retry_alternate: bool = True,
) -> LPSolution:
    """Solve *problem* with the named backend ("highs" or "simplex").

    ``tag`` attributes the call to a caller-chosen purpose (e.g.
    ``"admission"``) via an extra ``lp.solve.tag.<tag>`` counter, so call
    volume can be broken down by origin, not just by backend.

    Guardrails (see module docstring): a failed attempt (backend exception
    or ERROR status) is retried once on the alternate backend when
    ``retry_alternate`` is set; ``time_budget_s`` bounds the *total* wall
    time across attempts.  Exhausting either raises
    :class:`SolverFailure`.  INFEASIBLE and UNBOUNDED outcomes are valid
    answers and are returned normally (``lp.solve.nonoptimal`` counter).
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown LP backend {backend!r}; available: {available_backends()}"
        )
    obs = current_obs()
    attempts = [backend]
    if retry_alternate:
        alternate = _ALTERNATE.get(backend)
        if alternate is not None and alternate in _BACKENDS:
            attempts.append(alternate)

    start = time.perf_counter()
    last_error: Exception | None = None
    last_status = ""
    last_backend = backend
    for n, attempt_backend in enumerate(attempts):
        last_backend = attempt_backend
        if n > 0:
            obs.counter("lp.solve.retry").inc()
        with obs.span("lp.solve"):
            solution, error = _attempt(attempt_backend, problem)
        elapsed = time.perf_counter() - start
        obs.counter(f"lp.solve.calls.{attempt_backend}").inc()
        if tag is not None:
            obs.counter(f"lp.solve.tag.{tag}").inc()
        if error is not None:
            obs.counter(f"lp.solve.errors.{attempt_backend}").inc()
            last_error = error
            continue
        if time_budget_s is not None and elapsed > time_budget_s:
            # The budget bounds planning latency: even a usable answer that
            # arrives too late is a failure from the scheduling loop's point
            # of view (and retrying would stall it further).
            obs.counter("lp.solve.budget_exceeded").inc()
            raise SolverFailure(
                f"LP solve blew its {time_budget_s:.3f}s budget "
                f"({elapsed:.3f}s on {attempt_backend!r})",
                backend=attempt_backend,
                reason="budget",
                elapsed=elapsed,
            )
        if solution.status in (
            LPStatus.OPTIMAL,
            LPStatus.INFEASIBLE,
            LPStatus.UNBOUNDED,
        ):
            # INFEASIBLE and UNBOUNDED are *answers* (properties of the
            # problem a correct alternate backend would only confirm), not
            # solver faults — return them, don't retry.
            if not solution.is_optimal:
                obs.counter("lp.solve.nonoptimal").inc()
            return solution
        # ERROR: the solver misbehaved — never hand that to a caller as if
        # it were an answer.
        obs.counter(f"lp.solve.errors.{attempt_backend}").inc()
        last_status = solution.status.value
        last_error = None

    elapsed = time.perf_counter() - start
    obs.counter("lp.solve.failures").inc()
    detail = (
        f"{type(last_error).__name__}: {last_error}"
        if last_error is not None
        else f"status {last_status!r}"
    )
    raise SolverFailure(
        f"LP solve failed on all of {attempts} ({detail})",
        backend=last_backend,
        reason="error",
        elapsed=elapsed,
    )
